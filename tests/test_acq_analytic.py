"""Tests for the analytic acquisition criteria."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    ScaledExpectedImprovement,
    UpperConfidenceBound,
)


@pytest.fixture
def gp(fitted_gp):
    return fitted_gp[0]


@pytest.fixture
def best_f(fitted_gp):
    return float(fitted_gp[2].min())


class TestExpectedImprovement:
    def test_nonnegative(self, gp, best_f, rng):
        ei = ExpectedImprovement(gp, best_f)
        assert np.all(ei.value(rng.random((50, 3))) >= 0.0)

    def test_matches_closed_form(self, gp, best_f, rng):
        ei = ExpectedImprovement(gp, best_f)
        X = rng.random((10, 3))
        mu, sigma = gp.predict(X)
        u = (best_f - mu) / sigma
        expected = sigma * (u * norm.cdf(u) + norm.pdf(u))
        np.testing.assert_allclose(ei.value(X), expected, rtol=1e-10)

    def test_matches_mc_estimate(self, gp, best_f, rng):
        """EI is an expectation — verify against brute-force sampling."""
        ei = ExpectedImprovement(gp, best_f)
        x = rng.random((1, 3))
        mu, sigma = gp.predict(x)
        samples = mu[0] + sigma[0] * rng.standard_normal(200_000)
        mc = np.mean(np.maximum(best_f - samples, 0.0))
        assert ei.value(x)[0] == pytest.approx(mc, rel=0.05, abs=1e-4)

    def test_xi_reduces_ei(self, gp, best_f, rng):
        X = rng.random((10, 3))
        plain = ExpectedImprovement(gp, best_f).value(X)
        margin = ExpectedImprovement(gp, best_f, xi=0.5).value(X)
        assert np.all(margin <= plain + 1e-12)

    def test_negative_xi_rejected(self, gp, best_f):
        with pytest.raises(ValueError):
            ExpectedImprovement(gp, best_f, xi=-0.1)

    def test_positive_somewhere_with_loose_incumbent(self, gp, fitted_gp, rng):
        """With a beatable incumbent, EI must be positive in the region
        the model predicts below it."""
        loose = float(np.median(fitted_gp[2]))
        ei = ExpectedImprovement(gp, loose)
        assert ei.value(rng.random((200, 3))).max() > 0.0


class TestProbabilityOfImprovement:
    def test_in_unit_interval(self, gp, best_f, rng):
        pi = ProbabilityOfImprovement(gp, best_f)
        vals = pi.value(rng.random((30, 3)))
        assert np.all(vals >= 0.0) and np.all(vals <= 1.0)

    def test_monotone_in_best_f(self, gp, best_f, rng):
        """A looser target can only increase the probability."""
        X = rng.random((10, 3))
        tight = ProbabilityOfImprovement(gp, best_f).value(X)
        loose = ProbabilityOfImprovement(gp, best_f + 1.0).value(X)
        assert np.all(loose >= tight - 1e-12)


class TestUpperConfidenceBound:
    def test_formula(self, gp, rng):
        ucb = UpperConfidenceBound(gp, beta=4.0)
        X = rng.random((10, 3))
        mu, sigma = gp.predict(X)
        np.testing.assert_allclose(ucb.value(X), -mu + 2.0 * sigma, rtol=1e-10)

    def test_beta_zero_invalid(self, gp):
        with pytest.raises(Exception):
            UpperConfidenceBound(gp, beta=0.0)

    def test_larger_beta_rewards_uncertainty(self, gp, rng):
        x_far = np.array([[0.5, 0.5, 1.5]])
        x_near = gp.input_bounds[:, 0][None, :] * 0 + 0.5
        lo = UpperConfidenceBound(gp, beta=0.1)
        hi = UpperConfidenceBound(gp, beta=25.0)
        gain_far = hi.value(x_far)[0] - lo.value(x_far)[0]
        gain_near = hi.value(x_near)[0] - lo.value(x_near)[0]
        assert gain_far > gain_near


class TestScaledEI:
    def test_nonnegative_and_finite(self, gp, best_f, rng):
        sei = ScaledExpectedImprovement(gp, best_f)
        vals = sei.value(rng.random((30, 3)))
        assert np.all(np.isfinite(vals)) and np.all(vals >= 0.0)

    def test_differs_from_ei_ranking(self, gp, best_f, rng):
        """Scaled EI is a genuinely different criterion."""
        X = rng.random((200, 3))
        ei = ExpectedImprovement(gp, best_f).value(X)
        sei = ScaledExpectedImprovement(gp, best_f).value(X)
        assert int(np.argmax(ei)) != int(np.argmax(sei)) or not np.allclose(
            ei / (ei.max() + 1e-12), sei / (sei.max() + 1e-12)
        )
