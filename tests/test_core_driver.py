"""Tests for the time-budgeted driver."""

import numpy as np
import pytest

from repro.core import RandomSearch, make_optimizer, optimize, run_optimization
from repro.parallel import OverheadModel
from repro.problems import get_benchmark
from repro.uphes import UPHESSimulator
from repro.util import ConfigurationError

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


def _run(algorithm="random", q=2, budget=50.0, sim_time=10.0, **kwargs):
    problem = get_benchmark("sphere", dim=3, sim_time=sim_time)
    opt = make_optimizer(algorithm, problem, q, seed=0,
                         **(FAST if algorithm != "random" else {}))
    return run_optimization(problem, opt, budget, seed=0, **kwargs)


class TestBudgetAccounting:
    def test_random_cycle_count_matches_budget(self):
        """With free acquisition and no overhead the cycle count is
        exactly ceil(budget / sim_time)."""
        res = _run("random", q=2, budget=50.0,
                   overhead=OverheadModel(0.0, 0.0))
        assert res.n_cycles == 5
        assert res.n_simulations == 10
        # measured acquisition time of random search is ~µs but nonzero
        assert res.elapsed == pytest.approx(50.0, abs=0.05)

    def test_overhead_reduces_cycles(self):
        res = _run("random", q=2, budget=50.0,
                   overhead=OverheadModel(5.0, 0.0))
        assert res.n_cycles == 4  # 15 s per cycle

    def test_initial_design_excluded_from_budget(self):
        res = _run("random", q=2, budget=50.0,
                   overhead=OverheadModel(0.0, 0.0))
        assert res.n_initial == 32  # 16 * q, Table 2
        assert res.n_simulations == res.n_cycles * 2  # initial not counted

    def test_custom_initial_size(self):
        res = _run("random", q=2, budget=20.0, n_initial=5)
        assert res.n_initial == 5

    def test_shared_initial_design(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        X0 = np.random.default_rng(0).uniform(-5, 10, (7, 3))
        opt = RandomSearch(problem, 2, seed=0)
        res = run_optimization(problem, opt, 20.0, initial_design=X0)
        assert res.n_initial == 7

    def test_max_cycles_cap(self):
        res = _run("random", q=1, budget=1000.0, max_cycles=3)
        assert res.n_cycles == 3

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            _run("random", budget=0.0)

    def test_invalid_time_scale(self):
        with pytest.raises(ConfigurationError):
            _run("random", time_scale=-1.0)

    def test_time_scale_charges_overhead(self):
        """A GP-based algorithm with a huge time_scale must complete
        far fewer cycles than with zero scale."""
        free = _run("kb-q-ego", q=2, budget=60.0, time_scale=0.0)
        taxed = _run("kb-q-ego", q=2, budget=60.0, time_scale=3000.0)
        assert taxed.n_cycles < free.n_cycles


class TestRecords:
    def test_history_consistency(self):
        res = _run("random", q=2, budget=50.0)
        assert len(res.history) == res.n_cycles
        assert res.history[-1].n_evaluations == res.n_initial + res.n_simulations
        for rec in res.history:
            assert rec.batch_size == 2
            assert rec.sim_charged > 0

    def test_trajectory_monotone_for_minimization(self):
        res = _run("random", q=4, budget=100.0)
        traj = res.trajectory
        assert np.all(np.diff(traj) <= 1e-12)

    def test_best_value_matches_trajectory_end(self):
        res = _run("random", q=2, budget=50.0)
        assert res.best_value == res.trajectory[-1]

    def test_best_within_bounds(self):
        res = _run("random", q=2, budget=50.0)
        assert np.all(res.best_x >= -5.0) and np.all(res.best_x <= 10.0)


class TestMaximization:
    def test_uphes_profit_reported_natively(self):
        sim = UPHESSimulator(seed=0, sim_time=10.0)
        opt = RandomSearch(sim, 4, seed=0)
        res = run_optimization(sim, opt, 80.0, seed=0)
        assert res.maximize
        # running best must be non-decreasing for maximization
        assert np.all(np.diff(res.trajectory) >= -1e-12)
        assert res.best_value >= res.initial_best


class TestConvenienceEntryPoint:
    def test_optimize_wrapper(self):
        problem = get_benchmark("ackley", dim=3, sim_time=10.0)
        res = optimize(problem, algorithm="random", n_batch=2, budget=30.0,
                       seed=1)
        assert res.algorithm == "Random"
        assert res.n_batch == 2

    def test_optimize_improves_with_bo(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        res = optimize(problem, algorithm="turbo", n_batch=2, budget=80.0,
                       seed=0, time_scale=0.0, **FAST)
        assert res.best_value < res.initial_best
