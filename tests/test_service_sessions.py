"""Tests for session specs, the manager, and the crash-safe store."""

import threading

import numpy as np
import pytest

from repro.service.sessions import (
    SPEC_DEFAULTS,
    SessionManager,
    validate_spec,
)
from repro.util import (
    BackpressureError,
    ConfigurationError,
    UnknownSessionError,
    ValidationError,
)

SMALL_SPEC = {
    "problem": "sphere",
    "dim": 2,
    "algorithm": "random",
    "n_batch": 2,
    "n_initial": 4,
}


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def run_session(manager, name, n=4):
    """Drive n evaluations through a session; returns final n_told."""
    with manager.session(name) as s:
        for t in s.engine.ask(n):
            s.engine.tell(t["ticket"], float(np.sum(t["x"] ** 2)))
        return s.engine.n_told


class TestValidateSpec:
    def test_defaults_fill_in(self):
        spec = validate_spec({})
        assert spec == SPEC_DEFAULTS

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown session spec"):
            validate_spec({"probem": "ackley"})

    def test_name_key_ignored(self):
        assert "name" not in validate_spec({"name": "x"})

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            validate_spec({"algorithm": "gradient-descent"})

    def test_algorithm_normalized(self):
        assert validate_spec({"algorithm": "KB q-EGO"})["algorithm"] == "kb-q-ego"

    def test_bad_n_batch_rejected(self):
        with pytest.raises(ValidationError):
            validate_spec({"n_batch": 0})

    def test_bad_nonfinite_policy_rejected(self):
        with pytest.raises(ValidationError):
            validate_spec({"on_nonfinite": "pretend"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError):
            validate_spec(["not", "a", "spec"])


class TestSessionLifecycle:
    def test_create_and_get(self):
        m = SessionManager()
        m.create("a", SMALL_SPEC)
        assert m.get("a").spec["problem"] == "sphere"
        assert m.names() == ["a"]

    def test_invalid_names_rejected(self):
        m = SessionManager()
        for bad in ("", ".hidden", "a/b", "a" * 65, "sp ace"):
            with pytest.raises(ValidationError):
                m.create(bad, SMALL_SPEC)

    def test_duplicate_create_rejected(self):
        m = SessionManager()
        m.create("a", SMALL_SPEC)
        with pytest.raises(ConfigurationError, match="already exists"):
            m.create("a", SMALL_SPEC)

    def test_unknown_session_raises(self):
        with pytest.raises(UnknownSessionError):
            SessionManager().get("ghost")

    def test_sessions_progress_independently(self):
        m = SessionManager()
        m.create("a", SMALL_SPEC)
        m.create("b", SMALL_SPEC)
        run_session(m, "a", n=3)
        assert m.get("a").engine.n_told == 3
        assert m.get("b").engine.n_told == 0


class TestPersistence:
    def test_reload_in_fresh_manager(self, tmp_path):
        m1 = SessionManager(store_dir=tmp_path, fsync=False)
        m1.create("a", SMALL_SPEC)
        n_told = run_session(m1, "a")
        best = m1.get("a").engine.best

        m2 = SessionManager(store_dir=tmp_path, fsync=False)
        s = m2.get("a")
        assert s.engine.n_told == n_told
        assert s.engine.best[1] == best[1]
        np.testing.assert_array_equal(s.engine.best[0], best[0])

    def test_duplicate_rejected_against_store_too(self, tmp_path):
        SessionManager(store_dir=tmp_path, fsync=False).create("a", SMALL_SPEC)
        m2 = SessionManager(store_dir=tmp_path, fsync=False)
        with pytest.raises(ConfigurationError, match="already exists"):
            m2.create("a", SMALL_SPEC)

    def test_corrupt_store_file_is_a_typed_error(self, tmp_path):
        m1 = SessionManager(store_dir=tmp_path, fsync=False)
        m1.create("a", SMALL_SPEC)
        (tmp_path / "a.json").write_text("{ not json", encoding="utf-8")
        m2 = SessionManager(store_dir=tmp_path, fsync=False)
        with pytest.raises(ConfigurationError, match="unreadable"):
            m2.get("a")

    def test_pending_ledger_survives_reload(self, tmp_path):
        m1 = SessionManager(store_dir=tmp_path, fsync=False)
        m1.create("a", SMALL_SPEC)
        with m1.session("a") as s:
            tickets = s.engine.ask(2)
        m2 = SessionManager(store_dir=tmp_path, fsync=False)
        with m2.session("a") as s:
            assert s.engine.n_pending == 2
            r = s.engine.tell(tickets[0]["ticket"], 1.0)
        assert r["status"] == "accepted"


class TestEviction:
    def test_lru_eviction_spills_to_store(self, tmp_path):
        m = SessionManager(store_dir=tmp_path, max_sessions=2, fsync=False)
        m.create("a", SMALL_SPEC)
        m.create("b", SMALL_SPEC)
        run_session(m, "a")  # "a" is now most recently used
        m.create("c", SMALL_SPEC)  # evicts "b" (LRU)
        assert sorted(m._sessions) == ["a", "c"]
        assert (tmp_path / "b.json").exists()
        # transparently reloaded on next touch (evicting another)
        assert m.get("b").spec["problem"] == "sphere"

    def test_eviction_preserves_state(self, tmp_path):
        m = SessionManager(store_dir=tmp_path, max_sessions=1, fsync=False)
        m.create("a", SMALL_SPEC)
        run_session(m, "a")
        best = m.get("a").engine.best
        m.create("b", SMALL_SPEC)  # evicts "a"
        assert m.get("a").engine.best[1] == best[1]

    def test_without_store_refuses_to_lose_state(self):
        m = SessionManager(store_dir=None, max_sessions=1)
        m.create("a", SMALL_SPEC)
        with pytest.raises(BackpressureError):
            m.create("b", SMALL_SPEC)

    def test_sweep_idle_with_fake_clock(self, tmp_path):
        clock = FakeClock()
        m = SessionManager(
            store_dir=tmp_path, idle_timeout=60.0, fsync=False, clock=clock
        )
        m.create("a", SMALL_SPEC)
        clock.advance(30.0)
        m.create("b", SMALL_SPEC)
        clock.advance(45.0)  # "a" idle 75 s, "b" idle 45 s
        assert m.sweep_idle() == 1
        assert sorted(m._sessions) == ["b"]
        assert m.get("a").spec["problem"] == "sphere"  # reloadable

    def test_sweep_idle_noop_without_store(self):
        clock = FakeClock()
        m = SessionManager(idle_timeout=0.0, clock=clock)
        m.create("a", SMALL_SPEC)
        clock.advance(100.0)
        assert m.sweep_idle() == 0
        assert "a" in m._sessions

    def test_bad_max_sessions(self):
        with pytest.raises(ConfigurationError):
            SessionManager(max_sessions=0)


class TestEvictionGuard:
    """Sessions holding live in-flight tickets must never be evicted:
    a worker is mid-evaluation against them, and spilling the engine
    would turn its healthy tell into reload churn or a spurious
    requeue."""

    def test_pending_session_is_not_lru_evicted(self, tmp_path):
        m = SessionManager(store_dir=tmp_path, max_sessions=1, fsync=False)
        m.create("a", SMALL_SPEC)
        with m.session("a") as s:
            ticket = s.engine.ask(1)[0]["ticket"]
        # "a" is the only LRU candidate but holds a live ticket
        with pytest.raises(BackpressureError, match="none evictable"):
            m.create("b", SMALL_SPEC)
        assert "a" in m._sessions
        with m.session("a") as s:
            s.engine.tell(ticket, 1.0)
        m.create("b", SMALL_SPEC)  # quiescent now: evictable
        assert "b" in m._sessions

    def test_expired_tickets_unblock_eviction(self, tmp_path):
        clock = FakeClock()
        m = SessionManager(
            store_dir=tmp_path, max_sessions=1, fsync=False, clock=clock
        )
        m.create("a", {**SMALL_SPEC, "ask_timeout": 10.0})
        with m.session("a") as s:
            s.engine.ask(1)
        clock.advance(30.0)  # the ticket holder is presumed dead
        m.create("b", SMALL_SPEC)  # no longer blocked
        assert "a" not in m._sessions

    def test_sweep_idle_skips_sessions_with_live_tickets(self, tmp_path):
        clock = FakeClock()
        m = SessionManager(
            store_dir=tmp_path, idle_timeout=60.0, fsync=False, clock=clock
        )
        m.create("a", SMALL_SPEC)
        with m.session("a") as s:
            ticket = s.engine.ask(1)[0]["ticket"]
        clock.advance(100.0)  # idle long past the timeout, but pending
        assert m.sweep_idle() == 0
        assert "a" in m._sessions
        with m.session("a") as s:
            s.engine.tell(ticket, 1.0)
        clock.advance(100.0)
        assert m.sweep_idle() == 1

    def test_sigkill_reload_after_near_eviction_keeps_pending(
        self, tmp_path
    ):
        """Regression: memory pressure against a ticket-holding session
        followed by a SIGKILL-style reload must preserve the pending
        ledger exactly."""
        m = SessionManager(store_dir=tmp_path, max_sessions=2, fsync=False)
        m.create("a", SMALL_SPEC)
        with m.session("a") as s:
            tickets = s.engine.ask(2)
        m.create("b", SMALL_SPEC)
        m.create("c", SMALL_SPEC)  # pressure: evicts "b", never "a"
        assert "a" in m._sessions

        # SIGKILL: a fresh manager sees only the checkpoints
        m2 = SessionManager(store_dir=tmp_path, fsync=False)
        with m2.session("a") as s:
            assert s.engine.n_pending == 2
            r = s.engine.tell(tickets[0]["ticket"], 1.0)
            assert r["status"] == "accepted"
            counters = s.engine.counters
            assert counters["asks"] == (
                counters["tells"] + counters["requeues"] + s.engine.n_pending
            )


class TestConcurrency:
    def test_threads_hammering_one_session_stay_consistent(self):
        m = SessionManager()
        m.create("a", {**SMALL_SPEC, "n_initial": 8})
        n_threads, per_thread = 4, 6
        errors = []

        def work():
            try:
                for _ in range(per_thread):
                    with m.session("a") as s:
                        t = s.engine.ask(1)[0]
                        s.engine.tell(
                            t["ticket"], float(np.sum(t["x"] ** 2))
                        )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        eng = m.get("a").engine
        assert eng.n_told == n_threads * per_thread
        assert eng.n_pending == 0
        assert eng.counters["duplicates"] == 0
