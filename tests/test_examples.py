"""Smoke tests: the example scripts must run as advertised.

The heavier examples (quickstart, uphes_scheduling, batch_size_study)
exercise code paths the rest of the suite already covers at full
budget; here they are executed with the smallest budgets that still
demonstrate their point, through their importable main() entry points
where possible or as subprocesses for the cheap ones.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args, timeout: int = 600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCheapExamples:
    def test_plant_tour(self):
        proc = _run("uphes_plant_tour.py")
        assert proc.returncode == 0, proc.stderr
        assert "operating envelopes" in proc.stdout
        assert "expected profit" in proc.stdout

    def test_mpi_style_parallel(self):
        proc = _run("mpi_style_parallel.py")
        assert proc.returncode == 0, proc.stderr
        assert "match serial evaluation" in proc.stdout


@pytest.mark.slow
class TestServiceExample:
    def test_ask_tell_service(self):
        proc = _run("ask_tell_service.py", "6")
        assert proc.returncode == 0, proc.stderr
        assert "final best" in proc.stdout
        assert "evaluations" in proc.stdout


@pytest.mark.slow
class TestOptimizationExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "final best value" in proc.stdout

    def test_batch_size_study_small(self):
        proc = _run("batch_size_study.py", "turbo", "120")
        assert proc.returncode == 0, proc.stderr
        assert "breaking point" in proc.stdout

    def test_uphes_scheduling(self):
        proc = _run("uphes_scheduling.py")
        assert proc.returncode == 0, proc.stderr
        assert "optimized expected profit" in proc.stdout

    def test_rolling_horizon(self):
        proc = _run("rolling_horizon.py")
        assert proc.returncode == 0, proc.stderr
        assert "cumulative expected profit" in proc.stdout

    def test_algorithm_comparison(self):
        proc = _run("algorithm_comparison.py", "120")
        assert proc.returncode == 0, proc.stderr
        assert "winner:" in proc.stdout
