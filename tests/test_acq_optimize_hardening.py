"""Regression tests for the hardened inner acquisition optimizer."""

import numpy as np
import pytest

from repro.acquisition import ExpectedImprovement, optimize_acqf
from repro.gp import GaussianProcess

BOUNDS = np.tile([0.0, 1.0], (2, 1))


class _QuadraticAcq:
    """Deterministic smooth test acquisition: peak at (0.5, 0.5)."""

    has_analytic_grad = False

    def value(self, X):
        X = np.atleast_2d(X)
        return -np.sum((X - 0.5) ** 2, axis=1)


class _NaNAcq:
    has_analytic_grad = False

    def value(self, X):
        return np.full(np.atleast_2d(X).shape[0], np.nan)


class _RaisingAcq:
    has_analytic_grad = False

    def value(self, X):
        raise FloatingPointError("posterior collapsed")


class _NaNJointAcq:
    has_analytic_grad = False

    def value(self, Xq):
        return float("nan")


class TestWarmStartValidation:
    def test_nan_warm_start_is_dropped(self):
        # Regression: a NaN warm start used to sort first (NaN > all in
        # argsort) and be returned verbatim as the "best" candidate.
        x, val = optimize_acqf(
            _QuadraticAcq(), BOUNDS, seed=0, maxiter=10,
            initial_points=np.array([[np.nan, np.nan]]),
        )
        assert np.all(np.isfinite(x))
        assert np.all(x >= 0.0) and np.all(x <= 1.0)
        assert np.isfinite(val)

    def test_out_of_box_warm_start_is_clipped(self):
        x, _ = optimize_acqf(
            _QuadraticAcq(), BOUNDS, seed=0, maxiter=10,
            initial_points=np.array([[5.0, -3.0]]),
        )
        assert np.all(x >= 0.0) and np.all(x <= 1.0)

    def test_joint_warm_start_with_nan_rows_is_ignored(self):
        gp = GaussianProcess(dim=2, input_bounds=BOUNDS)
        rng = np.random.default_rng(0)
        X = rng.random((10, 2))
        gp.fit(X, np.sum(X**2, axis=1), n_restarts=0, maxiter=15, seed=0)
        from repro.acquisition import qExpectedImprovement

        acq = qExpectedImprovement(gp, 0.1, q=2, n_mc=16, seed=0)
        warm = np.array([[np.nan, 0.2], [0.3, 0.4]])
        Xq, _ = optimize_acqf(
            acq, BOUNDS, q=2, n_restarts=2, raw_samples=16, maxiter=10,
            seed=0, initial_points=[warm],
        )
        assert Xq.shape == (2, 2)
        assert np.all(np.isfinite(Xq))


class TestSickAcquisition:
    def test_all_nan_values_degrade_to_random_candidate(self):
        x, val = optimize_acqf(_NaNAcq(), BOUNDS, seed=0, maxiter=10)
        assert np.all(np.isfinite(x))
        assert np.all(x >= 0.0) and np.all(x <= 1.0)
        assert val == float("-inf")

    def test_raising_acquisition_degrades_to_random_candidate(self):
        x, val = optimize_acqf(_RaisingAcq(), BOUNDS, seed=0, maxiter=10)
        assert np.all(np.isfinite(x))
        assert val == float("-inf")

    def test_joint_all_nan_returns_random_batch(self):
        Xq, val = optimize_acqf(
            _NaNJointAcq(), BOUNDS, q=3, n_restarts=2, raw_samples=16,
            maxiter=10, seed=0,
        )
        assert Xq.shape == (3, 2)
        assert np.all(np.isfinite(Xq))
        assert val == float("-inf")

    def test_collapsed_gp_ei_still_returns_in_bounds_point(self):
        gp = GaussianProcess(dim=2, input_bounds=BOUNDS)
        X = np.tile([0.5, 0.5], (8, 1))
        gp.fit(X, np.zeros(8), optimize=False)
        acq = ExpectedImprovement(gp, 0.0)
        x, _ = optimize_acqf(acq, BOUNDS, seed=0, maxiter=10)
        assert np.all(np.isfinite(x))
        assert np.all(x >= 0.0) and np.all(x <= 1.0)


class TestAvoidDuplicates:
    def test_winning_duplicate_is_replaced(self):
        # The acquisition's argmax is exactly an already-evaluated
        # point; re-proposing it would waste a parallel evaluation.
        avoid = np.array([[0.5, 0.5]])
        x, _ = optimize_acqf(
            _QuadraticAcq(), BOUNDS, seed=0, maxiter=40, n_restarts=4,
            raw_samples=64, avoid=avoid, dedup_tol=1e-3,
        )
        assert np.max(np.abs(x - 0.5)) > 1e-3

    def test_no_avoid_keeps_the_true_argmax(self):
        x, _ = optimize_acqf(
            _QuadraticAcq(), BOUNDS, seed=0, maxiter=40, n_restarts=4,
            raw_samples=64,
        )
        np.testing.assert_allclose(x, [0.5, 0.5], atol=1e-4)

    def test_joint_batch_rows_avoid_history(self):
        avoid = np.array([[0.5, 0.5]])

        class _PeakJointAcq:
            has_analytic_grad = False

            def value(self, Xq):
                return -float(np.sum((np.atleast_2d(Xq) - 0.5) ** 2))

        Xq, _ = optimize_acqf(
            _PeakJointAcq(), BOUNDS, q=2, n_restarts=2, raw_samples=32,
            maxiter=40, seed=0, avoid=avoid, dedup_tol=1e-3,
        )
        for row in Xq:
            assert np.max(np.abs(row - 0.5)) > 1e-3

    def test_nonfinite_with_avoid_returns_nonduplicate(self):
        avoid = np.array([[0.25, 0.75]])
        x, val = optimize_acqf(
            _NaNAcq(), BOUNDS, seed=0, maxiter=10, avoid=avoid
        )
        assert np.all(np.isfinite(x))
        assert np.max(np.abs(x - avoid[0])) > 1e-9
        assert val == float("-inf")
