"""Tests for the portfolio behind the batch ask/tell protocol."""

import json

import numpy as np
import pytest

from repro.core import (
    algorithm_names,
    is_known_algorithm,
    make_optimizer,
    run_optimization,
)
from repro.portfolio import PortfolioOptimizer
from repro.problems import get_benchmark

FAST = {
    "gp_options": {"n_restarts": 0, "maxiter": 20},
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15},
}


def _opt(n_batch=3, seed=0, **kwargs):
    problem = get_benchmark("sphere", dim=3, sim_time=10.0)
    return problem, PortfolioOptimizer(
        problem, n_batch, seed=seed, arms=("kb", "random"), **FAST, **kwargs
    )


def _seed_data(problem, opt, n=10, seed=0):
    rng = np.random.default_rng(seed)
    lo, hi = problem.lower, problem.upper
    X = lo + rng.random((n, 3)) * (hi - lo)
    opt.initialize(X, np.asarray(problem(X), dtype=np.float64))


class TestRegistry:
    def test_portfolio_is_known(self):
        assert is_known_algorithm("portfolio")
        assert is_known_algorithm(" Portfolio ")
        assert "portfolio" in algorithm_names()

    def test_make_optimizer_builds_portfolio(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        opt = make_optimizer("portfolio", problem, 2, seed=0, **FAST)
        assert isinstance(opt, PortfolioOptimizer)
        assert opt.name == "portfolio"


class TestProtocol:
    def test_propose_batch_in_bounds(self):
        problem, opt = _opt()
        _seed_data(problem, opt)
        prop = opt.propose()
        assert prop.X.shape == (3, 3)
        assert np.all(prop.X >= problem.lower)
        assert np.all(prop.X <= problem.upper)
        assert len(prop.info["arms"]) == 3
        assert set(prop.info["arms"]) <= {"kb", "random"}

    def test_update_credits_proposing_arm(self):
        problem, opt = _opt()
        _seed_data(problem, opt)
        prop = opt.propose()
        # force a large improvement on every proposed row
        y = np.full(prop.X.shape[0], float(np.min(opt.y)) - 5.0)
        opt.update(prop.X, y)
        stats = opt.allocator.stats()
        assert sum(s["completions"] for s in stats.values()) == 3
        assert sum(s["total_credit"] for s in stats.values()) > 0
        assert not opt._arm_ledger  # every row matched and was consumed

    def test_foreign_rows_earn_no_credit(self):
        problem, opt = _opt()
        _seed_data(problem, opt)
        opt.propose()
        foreign = np.full((1, 3), 2.0)
        opt.update(foreign, np.asarray([1.0]))
        stats = opt.allocator.stats()
        assert sum(s["completions"] for s in stats.values()) == 0
        assert len(opt._arm_ledger) == 3  # untouched

    def test_runs_under_sync_driver(self):
        problem, opt = _opt(n_batch=2)
        res = run_optimization(problem, opt, 60.0, n_initial=8,
                               time_scale=0.0, seed=0)
        assert res.algorithm == "portfolio"
        assert res.n_simulations > 0
        assert res.best_value <= res.initial_best


class TestCheckpoint:
    def test_state_roundtrip_bit_equal_propose(self):
        problem, opt = _opt()
        _seed_data(problem, opt)
        opt.propose()
        state = json.loads(json.dumps(opt.get_state()))

        problem2, opt2 = _opt()
        _seed_data(problem2, opt2)  # (X, y) travel outside the snapshot
        opt2.set_state(state)
        a = opt.propose()
        b = opt2.propose()
        assert np.array_equal(a.X, b.X)
        assert a.info["arms"] == b.info["arms"]

    def test_state_covers_allocator_and_ledger(self):
        problem, opt = _opt()
        _seed_data(problem, opt)
        opt.propose()
        state = opt.get_state()
        assert state["allocator"]["total"] == 3
        assert len(state["arm_ledger"]) == 3


class TestEngineSession:
    def test_ask_tell_with_portfolio_algorithm(self):
        from repro.service.engine import AskTellEngine

        eng = AskTellEngine(
            get_benchmark("sphere", dim=3, sim_time=0.0),
            algorithm="portfolio", n_batch=2, seed=0, n_initial=6,
        )
        t1 = eng.ask(1)[0]
        t2 = eng.ask(1)[0]
        eng.tell(t1["ticket"], 1.0)
        out = eng.tell(t2["ticket"], 2.0)
        assert out["status"] == "accepted"
        assert eng.status()["algorithm"] == "portfolio"

    def test_portfolio_session_checkpoint_roundtrip(self, tmp_path):
        from repro.service.sessions import SessionManager

        mgr = SessionManager(store_dir=tmp_path, fsync=False)
        s = mgr.create("p", {"problem": "sphere", "dim": 3,
                             "algorithm": "portfolio", "n_batch": 2,
                             "n_initial": 6})
        t = s.engine.ask(1)[0]
        s.engine.tell(t["ticket"], 4.0)
        mgr.persist("p")

        mgr2 = SessionManager(store_dir=tmp_path, fsync=False)
        s2 = mgr2.get("p")
        a = s.engine.ask(1)[0]
        b = s2.engine.ask(1)[0]
        assert np.array_equal(a["x"], b["x"])
