"""Validation and serialization of the scenario spec layer.

Satellite coverage for the workload family's config edge cases:
zero-machine fleets, degenerate reservoir bounds, overlapping outage
windows, and byte-stable JSON round trips.
"""

import json

import pytest

from repro.scenarios import (
    REGIMES,
    EventSpec,
    PlantSpec,
    RegimeSpec,
    ScenarioSpec,
    apply_overrides,
    get_scenario,
    regime_names,
    scenario_names,
)
from repro.uphes.config import UPHESConfig
from repro.util import ConfigurationError


def _single(**kwargs) -> ScenarioSpec:
    """A minimal valid one-plant spec with field overrides."""
    defaults = dict(
        plants=(PlantSpec(name="maizeret"),),
        regimes=(RegimeSpec.named("base"),),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestApplyOverrides:
    def test_nested_replace(self):
        cfg = apply_overrides(
            UPHESConfig(), {"machine": {"p_turb_max": 9.5}}
        )
        assert cfg.machine.p_turb_max == 9.5
        # Untouched siblings keep the paper values.
        assert cfg.machine.p_pump_max == UPHESConfig().machine.p_pump_max

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            apply_overrides(UPHESConfig(), {"not_a_field": 1})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            apply_overrides(UPHESConfig(), {"upper": {"v_min": 0.0}})

    def test_degenerate_reservoir_bounds_fail_loudly(self):
        # The replaced dataclass re-runs its own validation.
        with pytest.raises(ConfigurationError, match="> 0"):
            apply_overrides(UPHESConfig(), {"upper": {"v_max": 0.0}})

    def test_empty_overrides_identity(self):
        base = UPHESConfig()
        assert apply_overrides(base, {}) is base


class TestFleetValidation:
    def test_zero_machine_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one plant"):
            ScenarioSpec(plants=(), regimes=(RegimeSpec.named("base"),))

    def test_zero_regimes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one regime"):
            ScenarioSpec(plants=(PlantSpec(name="a"),), regimes=())

    def test_duplicate_plant_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate plant"):
            ScenarioSpec(
                plants=(PlantSpec(name="a"), PlantSpec(name="a")),
                regimes=(RegimeSpec.named("base"),),
            )

    def test_duplicate_regime_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate regime"):
            _single(
                regimes=(RegimeSpec.named("base"), RegimeSpec.named("base"))
            )

    def test_plant_market_override_rejected(self):
        with pytest.raises(ConfigurationError, match="market"):
            PlantSpec(name="a", config={"market": {"price_base": 99.0}})

    def test_degenerate_plant_geometry_rejected(self):
        with pytest.raises(ConfigurationError, match="> 0"):
            _single(
                plants=(
                    PlantSpec(name="a", config={"lower": {"v_max": 0.0}}),
                )
            )

    def test_mismatched_horizons_rejected(self):
        with pytest.raises(ConfigurationError, match="share horizon"):
            ScenarioSpec(
                plants=(
                    PlantSpec(name="a"),
                    PlantSpec(name="b", config={"dt_hours": 0.5}),
                ),
                regimes=(RegimeSpec.named("base"),),
            )

    def test_bad_regime_market_override_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            _single(
                regimes=(RegimeSpec(name="x", market={"nope": 1.0}),)
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"price_impact": -0.1},
            {"aggregate": "median"},
            {"objective": "tri"},
            {"sim_time": 0.0},
        ],
    )
    def test_scalar_field_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            _single(**kwargs)


class TestEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            EventSpec(kind="flood")

    def test_empty_window(self):
        with pytest.raises(ConfigurationError, match="empty"):
            EventSpec(kind="outage", start_hour=6.0, end_hour=6.0)

    def test_negative_start(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            EventSpec(kind="outage", start_hour=-1.0, end_hour=2.0)

    def test_magnitude_range(self):
        with pytest.raises(ConfigurationError, match="magnitude"):
            EventSpec(kind="drought", magnitude=1.5)

    def test_unknown_plant_reference(self):
        with pytest.raises(ConfigurationError, match="unknown plant"):
            _single(events=(EventSpec(kind="outage", plant="ghost"),))

    def test_window_beyond_horizon(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            _single(
                events=(
                    EventSpec(kind="outage", start_hour=25.0, end_hour=26.0),
                )
            )

    def test_overlapping_outage_windows_are_legal(self):
        spec = _single(
            events=(
                EventSpec(kind="outage", start_hour=6.0, end_hour=12.0),
                EventSpec(kind="outage", start_hour=10.0, end_hour=14.0),
                EventSpec(kind="drought", start_hour=8.0, end_hour=16.0,
                          magnitude=0.5),
            )
        )
        assert len(spec.events) == 3


class TestSerialization:
    @pytest.mark.parametrize("name", ["paper", "duo", "seasonal", "stress",
                                      "mo"])
    def test_json_round_trip_byte_stable(self, name):
        spec = get_scenario(name)
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_json() == spec.to_json()
        # And through an actual JSON encode/decode cycle.
        again = ScenarioSpec.from_dict(json.loads(spec.to_json()))
        assert again.to_json() == spec.to_json()

    def test_to_json_is_canonical(self):
        spec = _single()
        assert spec.to_json() == json.dumps(spec.to_dict(), sort_keys=True)

    def test_from_dict_rejects_unknown_keys(self):
        data = _single().to_dict()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigurationError, match="must be a dict"):
            ScenarioSpec.from_dict([1, 2, 3])

    def test_lists_coerced_to_tuples(self):
        spec = ScenarioSpec.from_dict(
            {
                "plants": [{"name": "a"}],
                "regimes": [{"name": "base"}],
                "events": [
                    {"kind": "outage", "start_hour": 1.0, "end_hour": 2.0}
                ],
            }
        )
        assert isinstance(spec.plants, tuple)
        assert isinstance(spec.regimes, tuple)
        assert isinstance(spec.events, tuple)


class TestRegistries:
    def test_regime_registry(self):
        assert "base" in REGIMES and REGIMES["base"] == {}
        assert regime_names() == sorted(REGIMES)
        with pytest.raises(ConfigurationError, match="unknown regime"):
            RegimeSpec.named("monsoon")

    def test_regime_weight_positive(self):
        with pytest.raises(ConfigurationError, match="weight"):
            RegimeSpec(name="base", weight=0.0)

    def test_scenario_library(self):
        assert scenario_names() == sorted(
            ["paper", "duo", "seasonal", "stress", "mo"]
        )
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("nope")
        # Factories return fresh, valid instances each call.
        assert get_scenario("paper") == get_scenario("paper")
        assert get_scenario("paper") is not get_scenario("paper")


class TestDegeneracy:
    def test_paper_spec_is_degenerate(self):
        assert get_scenario("paper").is_degenerate()

    @pytest.mark.parametrize("name", ["duo", "seasonal", "stress", "mo"])
    def test_structured_specs_are_not(self, name):
        assert not get_scenario(name).is_degenerate()

    def test_market_override_breaks_degeneracy(self):
        spec = _single(regimes=(RegimeSpec.named("winter-peak"),))
        assert not spec.is_degenerate()

    def test_price_impact_breaks_degeneracy(self):
        assert not _single(price_impact=0.1).is_degenerate()
