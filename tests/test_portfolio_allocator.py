"""Tests for the bandit allocator over acquisition arms."""

import numpy as np
import pytest

from repro.portfolio.allocator import BanditAllocator
from repro.util import ConfigurationError, capture_rng, restore_rng

ARMS = ["kb", "turbo", "random"]


class TestConfiguration:
    def test_needs_arms(self):
        with pytest.raises(ConfigurationError):
            BanditAllocator([])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            BanditAllocator(["a", "a"])

    @pytest.mark.parametrize("kwargs", [
        {"rule": "greedy"},
        {"window": 0},
        {"temperature": 0.0},
        {"exploration_floor": 1.5},
        {"max_sick": 0},
        {"quarantine": -1},
    ])
    def test_rejects_bad_options(self, kwargs):
        with pytest.raises(ConfigurationError):
            BanditAllocator(ARMS, **kwargs)

    def test_index_of(self):
        alloc = BanditAllocator(ARMS)
        assert alloc.index_of("turbo") == 1
        with pytest.raises(ConfigurationError):
            alloc.index_of("nope")


class TestCredit:
    def test_window_slides(self):
        alloc = BanditAllocator(ARMS, window=3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            alloc.credit(0, v)
        # only the last 3 credits count
        assert alloc.mean_credit(0) == pytest.approx(4.0)
        assert alloc.stats()["kb"]["completions"] == 5

    def test_negative_improvement_clamped(self):
        alloc = BanditAllocator(ARMS)
        alloc.credit(0, -1.0)
        assert alloc.mean_credit(0) == 0.0


class TestSelection:
    def test_consumes_exactly_one_draw(self):
        alloc = BanditAllocator(ARMS)
        rng = np.random.default_rng(0)
        ref = np.random.default_rng(0)
        alloc.select(rng)
        ref.random()
        assert rng.random() == ref.random()

    def test_softmax_prefers_credited_arm(self):
        alloc = BanditAllocator(ARMS, exploration_floor=0.1,
                                temperature=0.05)
        for _ in range(20):
            alloc.credit(1, 1.0)
        rng = np.random.default_rng(0)
        picks = [alloc.select(rng) for _ in range(300)]
        assert picks.count(1) > 200

    def test_exploration_floor_keeps_losers_alive(self):
        alloc = BanditAllocator(ARMS, exploration_floor=0.5,
                                temperature=0.01)
        for _ in range(20):
            alloc.credit(1, 10.0)
        rng = np.random.default_rng(0)
        picks = [alloc.select(rng) for _ in range(600)]
        for i in range(3):
            assert picks.count(i) >= 30, (i, picks.count(i))

    def test_ucb_bonus_spreads_initial_picks(self):
        alloc = BanditAllocator(ARMS, rule="ucb", exploration_floor=0.0)
        rng = np.random.default_rng(0)
        picks = [alloc.select(rng) for _ in range(6)]
        # the sqrt(log t / n) bonus forces round-robin-ish coverage
        assert set(picks) == {0, 1, 2}

    def test_ucb_exploits_credited_arm(self):
        alloc = BanditAllocator(ARMS, rule="ucb", exploration_floor=0.0,
                                ucb_c=0.1)
        for _ in range(20):
            alloc.credit(2, 5.0)
        rng = np.random.default_rng(0)
        for _ in range(3):
            alloc.select(rng)  # burn the cold-start bonus
        picks = [alloc.select(rng) for _ in range(20)]
        assert picks.count(2) == 20


class TestQuarantine:
    def test_max_sick_failures_quarantine(self):
        alloc = BanditAllocator(ARMS, max_sick=3, quarantine=5)
        assert alloc.report_failure(0) is False
        assert alloc.report_failure(0) is False
        assert alloc.report_failure(0) is True  # newly quarantined
        assert alloc.quarantined() == ["kb"]
        assert 0 not in alloc.active()

    def test_success_resets_streak(self):
        alloc = BanditAllocator(ARMS, max_sick=2, quarantine=5)
        alloc.report_failure(0)
        alloc.report_success(0)
        assert alloc.report_failure(0) is False
        assert alloc.quarantined() == []

    def test_quarantine_ticks_down_per_selection(self):
        alloc = BanditAllocator(ARMS, max_sick=1, quarantine=2)
        alloc.report_failure(0)
        rng = np.random.default_rng(0)
        picks = [alloc.select(rng) for _ in range(50)]
        assert 0 not in picks[:2]
        assert 0 in picks  # back in rotation once the rounds expire

    def test_all_quarantined_still_selects(self):
        alloc = BanditAllocator(ARMS, max_sick=1, quarantine=1000)
        for i in range(3):
            alloc.report_failure(i)
        rng = np.random.default_rng(0)
        picks = {alloc.select(rng) for _ in range(60)}
        assert picks <= {0, 1, 2} and picks


class TestCheckpoint:
    def _exercise(self, alloc, rng, n=40):
        picks = []
        for j in range(n):
            i = alloc.select(rng)
            picks.append(i)
            alloc.credit(i, float(rng.random()))
            if j % 7 == 0:
                alloc.report_failure(i)
            else:
                alloc.report_success(i)
        return picks

    def test_kill_and_resume_bit_equivalence(self):
        """Snapshot mid-run, rebuild from JSON, replay: identical picks
        and identical counters — the PR-1 resume contract applied to
        the allocator."""
        alloc = BanditAllocator(ARMS, max_sick=2, quarantine=3)
        rng = np.random.default_rng(7)
        self._exercise(alloc, rng, n=25)

        state = alloc.get_state()
        rng_state = capture_rng(rng)

        live = self._exercise(alloc, rng, n=30)

        resumed = BanditAllocator(ARMS, max_sick=2, quarantine=3)
        resumed.set_state(state)
        rng2 = restore_rng(np.random.default_rng(0), rng_state)
        replay = self._exercise(resumed, rng2, n=30)

        assert replay == live
        assert resumed.get_state() == alloc.get_state()
        assert resumed.stats() == alloc.stats()

    def test_state_roundtrips_through_json(self):
        import json

        alloc = BanditAllocator(ARMS)
        self._exercise(alloc, np.random.default_rng(1), n=15)
        blob = json.dumps(alloc.get_state())
        other = BanditAllocator(ARMS)
        other.set_state(json.loads(blob))
        assert other.get_state() == alloc.get_state()

    def test_rejects_mismatched_arms(self):
        alloc = BanditAllocator(ARMS)
        other = BanditAllocator(["a", "b"])
        with pytest.raises(ConfigurationError):
            other.set_state(alloc.get_state())
