"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_numpy_integer_accepted(self):
        g = as_generator(np.int64(5))
        assert isinstance(g, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_children_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_deterministic_from_int_seed(self):
        a1, a2 = spawn_generators(3, 2)
        b1, b2 = spawn_generators(3, 2)
        np.testing.assert_array_equal(a1.random(5), b1.random(5))
        np.testing.assert_array_equal(a2.random(5), b2.random(5))

    def test_from_generator_parent(self):
        parent = np.random.default_rng(0)
        kids = spawn_generators(parent, 3)
        assert len(kids) == 3
        assert not np.allclose(kids[0].random(5), kids[1].random(5))

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
