"""Tests for TuRBO-m (multiple simultaneous trust regions)."""

import numpy as np
import pytest

from repro.core import TuRBOm, make_optimizer
from repro.doe import latin_hypercube
from repro.problems import get_benchmark
from repro.util import ConfigurationError

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


def _init(q=2, seed=0, n_regions=3, n0=12, **kwargs):
    problem = get_benchmark("sphere", dim=3)
    opt = TuRBOm(problem, q, seed=seed, n_regions=n_regions,
                 n_candidates_per_region=64, **FAST, **kwargs)
    X0 = latin_hypercube(n0, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


class TestInitialization:
    def test_registered(self):
        problem = get_benchmark("sphere", dim=3)
        opt = make_optimizer("turbo-m", problem, 2, seed=0)
        assert isinstance(opt, TuRBOm)

    def test_regions_split_initial_design(self):
        _, opt = _init(n_regions=3, n0=12)
        assert len(opt.regions) == 3
        assert sum(r.X.shape[0] for r in opt.regions) == 12
        for region in opt.regions:
            assert region.length == pytest.approx(0.8)

    def test_invalid_region_count(self):
        problem = get_benchmark("sphere", dim=3)
        with pytest.raises(ConfigurationError):
            TuRBOm(problem, 2, n_regions=0)


class TestProposal:
    def test_batch_contract(self):
        problem, opt = _init(q=4)
        prop = opt.propose()
        assert prop.X.shape == (4, 3)
        assert np.all(problem.contains(prop.X))
        assert len(prop.info["assignment"]) == 4
        assert set(prop.info["assignment"]) <= {0, 1, 2}

    def test_assignment_feeds_back_to_regions(self):
        problem, opt = _init(q=4)
        sizes_before = [r.X.shape[0] for r in opt.regions]
        prop = opt.propose()
        opt.update(prop.X, problem(prop.X))
        sizes_after = [r.X.shape[0] for r in opt.regions]
        assert sum(sizes_after) == sum(sizes_before) + 4
        # every appended point landed in its assigned region
        grown = [a - b for a, b in zip(sizes_after, sizes_before)]
        for r_idx, count in enumerate(grown):
            assert count == prop.info["assignment"].count(r_idx)

    def test_single_region_degenerates_to_turbo_like(self):
        problem, opt = _init(q=2, n_regions=1)
        prop = opt.propose()
        assert prop.X.shape == (2, 3)
        assert set(prop.info["assignment"]) == {0}


class TestRegionDynamics:
    def test_independent_lengths(self):
        problem, opt = _init(q=2, n_regions=2)
        # force region 0 into repeated failure via direct bookkeeping
        opt.regions[0].n_fail = opt.fail_tol - 1
        opt._assignment = [0, 0]
        opt._after_update(np.full((2, 3), 4.0), np.array([1e6, 1e6]))
        assert opt.regions[0].length == pytest.approx(0.4)
        assert opt.regions[1].length == pytest.approx(0.8)

    def test_collapse_restarts_only_that_region(self):
        _, opt = _init(q=2, n_regions=2)
        opt.regions[0].length = opt.length_min * 1.5
        opt.regions[0].n_fail = opt.fail_tol - 1
        opt._assignment = [0, 0]
        opt._after_update(np.full((2, 3), 4.0), np.array([1e6, 1e6]))
        assert opt.regions[0].restarting
        assert opt.regions[0].n_restarts == 1
        assert not opt.regions[1].restarting

    def test_restarting_region_claims_lhs_slots(self):
        problem, opt = _init(q=3, n_regions=2)
        opt.regions[0].restart_remaining = 2
        opt.regions[0].X = np.empty((0, 3))
        opt.regions[0].y = np.empty(0)
        prop = opt.propose()
        assert prop.info["assignment"][:2] == [0, 0]

    def test_restart_completes(self):
        problem, opt = _init(q=4, n_regions=2)
        opt.regions[0].restart_remaining = 3
        opt.regions[0].X = np.empty((0, 3))
        opt.regions[0].y = np.empty(0)
        prop = opt.propose()
        opt.update(prop.X, problem(prop.X))
        assert not opt.regions[0].restarting
        assert opt.regions[0].X.shape[0] >= 3


class TestOptimization:
    def test_improves_on_sphere(self):
        problem, opt = _init(q=2)
        start = opt.best_f
        for _ in range(6):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        assert opt.best_f < start

    def test_reproducible(self):
        _, a = _init(q=2, seed=5)
        _, b = _init(q=2, seed=5)
        np.testing.assert_allclose(a.propose().X, b.propose().X)
