"""Tests for the atomic write/append primitives."""

import json
import os

import pytest

from repro.resilience import append_line, atomic_write_json, atomic_write_text
from repro.util import ValidationError


class TestAtomicWriteText:
    def test_creates_file_with_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x" * 10_000)
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "deep")
        assert path.read_text() == "deep"


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.json"
        payload = {"a": [1, 2.5, None], "b": "text"}
        atomic_write_json(path, payload)
        assert json.loads(path.read_text()) == payload

    def test_replaces_corrupt_file(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text('{"truncat')
        atomic_write_json(path, {"ok": True})
        assert json.loads(path.read_text()) == {"ok": True}


class TestAppendLine:
    def test_appends_in_order(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, "one")
        append_line(path, "two")
        append_line(path, "three")
        assert path.read_text().splitlines() == ["one", "two", "three"]

    def test_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(ValidationError):
            append_line(tmp_path / "log.jsonl", "bad\nline")

    def test_no_fsync_still_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, "fast", fsync=False)
        assert path.read_text() == "fast\n"
