"""Tests for the atomic write/append primitives."""

import json
import os

import pytest

from repro.resilience import append_line, atomic_write_json, atomic_write_text
from repro.util import ValidationError


class TestAtomicWriteText:
    def test_creates_file_with_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x" * 10_000)
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "deep")
        assert path.read_text() == "deep"


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.json"
        payload = {"a": [1, 2.5, None], "b": "text"}
        atomic_write_json(path, payload)
        assert json.loads(path.read_text()) == payload

    def test_replaces_corrupt_file(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text('{"truncat')
        atomic_write_json(path, {"ok": True})
        assert json.loads(path.read_text()) == {"ok": True}


class TestAppendLine:
    def test_appends_in_order(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, "one")
        append_line(path, "two")
        append_line(path, "three")
        assert path.read_text().splitlines() == ["one", "two", "three"]

    def test_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(ValidationError):
            append_line(tmp_path / "log.jsonl", "bad\nline")

    def test_no_fsync_still_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, "fast", fsync=False)
        assert path.read_text() == "fast\n"


class TestBackupCheckpoints:
    def test_backup_keeps_previous_generation(self, tmp_path):
        from repro.resilience import backup_path

        path = tmp_path / "state.json"
        atomic_write_json(path, {"gen": 1}, backup=True)
        assert not backup_path(path).exists()  # nothing to back up yet
        atomic_write_json(path, {"gen": 2}, backup=True)
        assert json.loads(path.read_text()) == {"gen": 2}
        assert json.loads(backup_path(path).read_text()) == {"gen": 1}

    def test_load_falls_back_to_backup_on_corruption(self, tmp_path):
        from repro.resilience import load_json_with_backup

        path = tmp_path / "state.json"
        atomic_write_json(path, {"gen": 1}, backup=True)
        atomic_write_json(path, {"gen": 2}, backup=True)
        data, recovered = load_json_with_backup(path)
        assert (data, recovered) == ({"gen": 2}, False)
        path.write_text("{corrupt", encoding="utf-8")
        data, recovered = load_json_with_backup(path)
        assert (data, recovered) == ({"gen": 1}, True)

    def test_load_without_backup_surfaces_primary_error(self, tmp_path):
        from repro.resilience import load_json_with_backup

        path = tmp_path / "state.json"
        path.write_text("{corrupt", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            load_json_with_backup(path)

    def test_manager_recovers_session_from_backup(self, tmp_path):
        import numpy as np

        from repro.service.sessions import SessionManager

        m = SessionManager(
            store_dir=tmp_path, fsync=False, backup_checkpoints=True
        )
        m.create("a", {"problem": "sphere", "dim": 2, "algorithm": "random",
                       "n_batch": 2, "n_initial": 2})
        for _ in range(2):  # two persist generations
            with m.session("a") as s:
                t = s.engine.ask(1)[0]
                s.engine.tell(t["ticket"], float(np.sum(t["x"] ** 2)))
        # torn write: the primary checkpoint is garbage after a crash
        (tmp_path / "a.json").write_text("{torn", encoding="utf-8")
        m2 = SessionManager(
            store_dir=tmp_path, fsync=False, backup_checkpoints=True
        )
        with m2.session("a") as s:
            # the backup is one generation stale, never empty
            assert s.engine.n_told == 1
