"""The fleet simulator: reduction, lineage stability, price coupling."""

import numpy as np
import pytest

from repro.scenarios import (
    FleetSimulator,
    PlantSpec,
    RegimeSpec,
    ScenarioSpec,
    build_problem,
    get_scenario,
)
from repro.uphes import UPHESSimulator
from repro.util import ConfigurationError


def _degenerate(seed=0) -> ScenarioSpec:
    return ScenarioSpec(
        plants=(PlantSpec(name="maizeret"),),
        regimes=(RegimeSpec.named("base"),),
        seed=seed,
    )


def _batch(problem, n=16, seed=7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(
        problem.bounds[:, 0], problem.bounds[:, 1], size=(n, problem.dim)
    )


class TestDegenerateReduction:
    def test_builder_returns_plain_simulator(self):
        problem = build_problem(_degenerate())
        assert isinstance(problem, UPHESSimulator)
        assert not isinstance(problem, FleetSimulator)
        assert problem.spec == _degenerate()

    def test_bit_identical_to_legacy_path(self):
        reduced = build_problem(_degenerate(seed=0))
        legacy = UPHESSimulator(seed=0, sim_time=10.0)
        X = _batch(legacy)
        assert np.array_equal(reduced.evaluate(X), legacy.evaluate(X))

    def test_forced_fleet_wrapper_is_passthrough(self):
        # Even without the reduction shortcut, a degenerate spec's
        # fleet wrapper must delegate bit-exactly to its single plant.
        fleet = FleetSimulator(_degenerate(seed=3))
        inner = fleet._sims[0][0]
        X = _batch(fleet)
        assert np.array_equal(fleet.evaluate(X), inner.evaluate(X))

    def test_dict_input_accepted(self):
        problem = build_problem(_degenerate().to_dict())
        assert isinstance(problem, UPHESSimulator)

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="ScenarioSpec"):
            build_problem(42)


class TestFleetStructure:
    def test_bounds_stack_per_plant(self):
        fleet = FleetSimulator(get_scenario("duo"))
        single = UPHESSimulator(seed=0)
        assert fleet.dim == 2 * single.dim
        assert np.array_equal(fleet.bounds[: single.dim], single.bounds)

    def test_split_roundtrips(self):
        fleet = FleetSimulator(get_scenario("duo"))
        X = _batch(fleet, n=5)
        parts = fleet.split(X)
        assert [p.shape for p in parts] == [(5, 12), (5, 12)]
        assert np.array_equal(np.hstack(parts), X)

    def test_regime_shares_one_market_object(self):
        fleet = FleetSimulator(get_scenario("duo"))
        sims = fleet._sims[0]
        assert sims[0].market is sims[1].market is fleet.markets[0]

    def test_maximize_orientation_and_name(self):
        fleet = FleetSimulator(get_scenario("stress"))
        assert fleet.maximize
        assert fleet.name == "scenario:stress"


class TestLineageStability:
    def test_build_twice_is_deterministic(self):
        a = FleetSimulator(get_scenario("stress"))
        b = FleetSimulator(get_scenario("stress"))
        X = _batch(a, n=8)
        assert np.array_equal(a.evaluate(X), b.evaluate(X))

    def test_regime_streams_independent_of_sibling_count(self):
        # Regime 0's market draw must not depend on how many regimes
        # follow it in the bundle (SeedSequence.spawn lineage).
        one = FleetSimulator(_degenerate(seed=5))
        two = FleetSimulator(
            ScenarioSpec(
                plants=(PlantSpec(name="maizeret"),),
                regimes=(
                    RegimeSpec.named("base"),
                    RegimeSpec.named("winter-peak"),
                ),
                seed=5,
            )
        )
        assert np.array_equal(
            one.markets[0].energy_price, two.markets[0].energy_price
        )

    def test_seed_changes_the_draws(self):
        a = FleetSimulator(_degenerate(seed=0))
        b = FleetSimulator(_degenerate(seed=1))
        assert not np.array_equal(
            a.markets[0].energy_price, b.markets[0].energy_price
        )


class TestAggregation:
    def test_worst_is_never_above_mean(self):
        base = get_scenario("seasonal")
        mean = FleetSimulator(base)
        worst = FleetSimulator(
            ScenarioSpec.from_dict({**base.to_dict(), "aggregate": "worst"})
        )
        X = _batch(mean, n=12)
        assert np.all(worst.evaluate(X) <= mean.evaluate(X) + 1e-9)

    def test_weights_normalized(self):
        fleet = FleetSimulator(get_scenario("seasonal"))
        assert fleet._weights.sum() == pytest.approx(1.0)
        assert fleet._weights[0] == pytest.approx(1.0 / 2.5)


class TestPriceCoupling:
    def test_zero_impact_returns_none(self):
        fleet = FleetSimulator(get_scenario("seasonal"))
        parts = fleet.split(_batch(fleet, n=3))
        assert fleet._coupled_prices(parts, fleet._sims[0]) is None

    def test_injection_depresses_settled_price(self):
        fleet = FleetSimulator(get_scenario("duo"))
        X = _batch(fleet, n=4)
        parts = fleet.split(X)
        # Force both plants to full turbine commitment everywhere.
        for part, sim in zip(parts, fleet._sims[0]):
            blocks = sim.config.market.n_energy_blocks
            part[:, :blocks] = sim.config.machine.p_turb_max
        prices = fleet._coupled_prices(parts, fleet._sims[0])
        base = fleet.markets[0].energy_price[None, :, :]
        assert np.all(prices[0] <= base + 1e-12)
        assert prices[0].mean() < base.mean()
        # Floored at the market's minimum price.
        assert prices[0].min() >= fleet.markets[0].config.min_price - 1e-12

    def test_coupling_changes_the_objective(self):
        spec = get_scenario("duo")
        coupled = FleetSimulator(spec)
        uncoupled = FleetSimulator(
            ScenarioSpec.from_dict({**spec.to_dict(), "price_impact": 0.0})
        )
        X = _batch(coupled, n=8)
        assert not np.array_equal(coupled.evaluate(X), uncoupled.evaluate(X))
