"""Tests for the deterministic AnalyticTimeModel."""

import numpy as np
import pytest

from repro.core import AnalyticTimeModel, RandomSearch, make_optimizer, run_optimization
from repro.parallel import OverheadModel
from repro.problems import get_benchmark

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


class TestModelFormulas:
    def test_fit_scaling_is_cubic(self):
        m = AnalyticTimeModel(fit_coeff=1e-6)
        assert m.fit_time(200) == pytest.approx(8.0 * m.fit_time(100))

    def test_acq_affine_in_q(self):
        m = AnalyticTimeModel(acq_base=0.5, acq_per_candidate=0.25)
        assert m.acq_time(4) == pytest.approx(1.5)

    def test_charge_serial(self):
        from repro.core.base import Proposal

        m = AnalyticTimeModel(fit_coeff=0.0, acq_base=1.0,
                              acq_per_candidate=1.0)
        p = Proposal(X=np.zeros((4, 3)))
        assert m.charge(p, n_train=10, n_workers=4) == pytest.approx(5.0)

    def test_charge_parallel_regions(self):
        from repro.core.base import Proposal

        m = AnalyticTimeModel(fit_coeff=0.0, acq_base=1.0,
                              acq_per_candidate=1.0)
        p = Proposal(X=np.zeros((2, 3)), acq_durations=[0.1] * 4)
        # 4 regions of (1+1)s on 2 workers -> makespan 4s
        assert m.charge(p, n_train=10, n_workers=2) == pytest.approx(4.0)


class TestDeterministicDriver:
    def test_cycle_count_machine_independent(self):
        """With the analytic model the whole run record is exactly
        reproducible, whatever the host load."""
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        model = AnalyticTimeModel(fit_coeff=1e-6, acq_base=2.0,
                                  acq_per_candidate=0.5)

        def run():
            opt = RandomSearch(problem, 2, seed=0)
            return run_optimization(
                problem, opt, 60.0, n_initial=4,
                overhead=OverheadModel(0.0, 0.0), seed=0, time_model=model,
            )

        a, b = run(), run()
        assert a.n_cycles == b.n_cycles
        assert [r.acq_charged for r in a.history] == [
            r.acq_charged for r in b.history
        ]
        # 10s sim + 3s overhead + tiny fit term per cycle -> 5 cycles
        assert a.n_cycles == 5

    def test_growing_data_slows_cycles(self):
        """The analytic n³ term reproduces the breaking-point mechanism
        deterministically: later cycles are charged more."""
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        model = AnalyticTimeModel(fit_coeff=5e-6, acq_base=0.0,
                                  acq_per_candidate=0.0)
        opt = make_optimizer("random", problem, 4, seed=0)
        res = run_optimization(
            problem, opt, 200.0, n_initial=8,
            overhead=OverheadModel(0.0, 0.0), seed=0, time_model=model,
        )
        charges = [r.acq_charged for r in res.history]
        assert charges[-1] > charges[0]
        assert all(np.diff(charges) >= 0)
