"""Tests for the hyperparameter-fingerprinted Cholesky factor cache.

Covers the bit-identity contract (a cached fit must be byte-for-byte
what a cache-free fit produces), the hit/append/truncate/miss match
ladder and its observability counters, checkpoint replay, and the
optimizer-level ``refit_every`` wiring that makes theta-frozen refits
skip full refactorizations entirely.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import FactorCache, GaussianProcess, kernel_fingerprint
from repro.gp.safe_fit import safe_fit
from repro.obs import MetricsRegistry, set_metrics
from repro.problems import get_benchmark


@pytest.fixture
def metrics():
    """Install a real registry for the duration of one test."""
    reg = MetricsRegistry()
    previous = set_metrics(reg)
    yield reg
    set_metrics(previous)


def _counts(reg):
    return {
        name: reg.counter(f"gp.refit.cache_{name}").value
        for name in ("hit", "append", "truncate", "miss")
    }


def _data(seed, n, d=3):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 - 0.5 * X[:, 2]
    return X, y


def _gp(bounds, cache=None):
    gp = GaussianProcess(dim=3, input_bounds=bounds)
    gp.factor_cache = cache
    return gp


class TestBitIdentity:
    def test_first_fit_matches_cache_off(self, unit_bounds3):
        """A cold miss runs the exact same code path as no cache."""
        X, y = _data(0, 18)
        plain = _gp(unit_bounds3).fit(X, y, n_restarts=1, maxiter=40, seed=0)
        cached = _gp(unit_bounds3, FactorCache()).fit(
            X, y, n_restarts=1, maxiter=40, seed=0
        )
        assert cached.L_.tobytes() == plain.L_.tobytes()
        assert cached.alpha_.tobytes() == plain.alpha_.tobytes()

    def test_hit_returns_identical_factor(self, unit_bounds3, metrics):
        """Unchanged hyperparameters + data → the very same factor."""
        X, y = _data(1, 15)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache).fit(X, y, n_restarts=1, seed=0)
        L_first = gp.L_
        # refit without re-optimizing: theta and data are unchanged
        gp.fit(X, y, optimize=False)
        assert gp.L_ is L_first
        assert _counts(metrics) == {
            "hit": 1.0, "append": 0.0, "truncate": 0.0, "miss": 1.0
        }

    def test_append_path_matches_fresh_within_tolerance(self, unit_bounds3):
        X, y = _data(2, 12)
        X2, y2 = _data(3, 16)
        X_all = np.vstack([X, X2[:4]])
        y_all = np.concatenate([y, y2[:4]])
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache).fit(X, y, optimize=False)
        gp.fit(X_all, y_all, optimize=False)
        fresh = _gp(unit_bounds3).fit(X_all, y_all, optimize=False)
        np.testing.assert_allclose(gp.L_, fresh.L_, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(
            gp.predict(X[:5])[0], fresh.predict(X[:5])[0], rtol=1e-8
        )


class TestMatchLadder:
    def test_theta_change_invalidates(self, unit_bounds3, metrics):
        """A different fingerprint must never reuse the factor."""
        X, y = _data(4, 14)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache).fit(X, y, optimize=False)
        gp.kernel.theta = gp.kernel.theta + 0.1
        gp.fit(X, y, optimize=False)
        assert _counts(metrics)["miss"] == 2.0
        assert _counts(metrics)["hit"] == 0.0

    def test_noise_change_invalidates(self, unit_bounds3, metrics):
        X, y = _data(5, 14)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache).fit(X, y, optimize=False)
        gp.log_noise = gp.log_noise + 0.5
        gp.fit(X, y, optimize=False)
        assert _counts(metrics)["miss"] == 2.0

    def test_changed_prefix_misses(self, unit_bounds3, metrics):
        """Mutating an already-cached row forces a full rebuild."""
        X, y = _data(6, 14)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache).fit(X, y, optimize=False)
        X_mut = X.copy()
        X_mut[0, 0] = 1.0 - X_mut[0, 0]
        gp.fit(X_mut, y, optimize=False)
        assert _counts(metrics)["miss"] == 2.0
        fresh = _gp(unit_bounds3).fit(X_mut, y, optimize=False)
        assert gp.L_.tobytes() == fresh.L_.tobytes()

    def test_split_seam_enables_truncation(self, unit_bounds3, metrics):
        """A fantasy-suffix swap truncates back to the seam block."""
        X, y = _data(7, 16)
        fant_a, _ = _data(8, 4)
        fant_b, _ = _data(9, 4)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache)
        gp.fit(
            np.vstack([X, fant_a]), np.concatenate([y, np.zeros(4)]),
            optimize=False, cache_split=16,
        )
        assert _counts(metrics)["miss"] == 1.0
        gp.fit(
            np.vstack([X, fant_b]), np.concatenate([y, np.ones(4)]),
            optimize=False, cache_split=16,
        )
        assert _counts(metrics) == {
            "hit": 0.0, "append": 0.0, "truncate": 1.0, "miss": 1.0
        }

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(5, 14), m=st.integers(1, 5), seed=st.integers(0, 200))
    def test_truncate_append_replay_is_consistent(self, n, m, seed):
        """Whatever path the ladder takes, reusing the cache and
        rebuilding from scratch agree to solver tolerance."""
        bounds = np.tile([0.0, 1.0], (3, 1))
        X, y = _data(seed, n + m)
        cache = FactorCache()
        gp = _gp(bounds, cache)
        gp.fit(X, y, optimize=False, cache_split=n)
        # drop the suffix, then extend with a different one
        X2, y2 = _data(seed + 1000, n + m)
        X_next = np.vstack([X[:n], X2[n:]])
        y_next = np.concatenate([y[:n], y2[n:]])
        gp.fit(X_next, y_next, optimize=False, cache_split=n)
        fresh = _gp(bounds).fit(X_next, y_next, optimize=False)
        np.testing.assert_allclose(gp.L_, fresh.L_, rtol=1e-8, atol=1e-10)


class TestSerialization:
    def test_single_block_state_is_none(self, unit_bounds3):
        X, y = _data(10, 12)
        cache = FactorCache()
        _gp(unit_bounds3, cache).fit(X, y, optimize=False)
        assert cache.get_state() is None

    def test_multi_block_replay_is_bit_identical(self, unit_bounds3):
        """Kill/resume: the replayed factor has the exact same bytes."""
        X, y = _data(11, 12)
        X2, y2 = _data(12, 16)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache)
        gp.fit(X, y, optimize=False)
        # append on matching prefix → multi-block chain [12, 4]
        X_all = np.vstack([X, X2[:4]])
        y_all = np.concatenate([y, y2[:4]])
        gp.fit(X_all, y_all, optimize=False)
        L_before = gp.L_.copy()
        state = cache.get_state()
        assert state is not None

        import json
        state = json.loads(json.dumps(state))  # journal round trip
        cache2 = FactorCache()
        cache2.set_state(state)
        gp2 = _gp(unit_bounds3, cache2)
        gp2.fit(X_all, y_all, optimize=False)
        assert gp2.L_.tobytes() == L_before.tobytes()

    def test_stale_snapshot_discarded(self, unit_bounds3, metrics):
        """A snapshot from different hyperparameters must not poison."""
        X, y = _data(13, 12)
        X_all = np.vstack([X, _data(14, 4)[0]])
        y_all = np.concatenate([y, np.zeros(4)])
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache)
        gp.fit(X, y, optimize=False)
        gp.fit(X_all, y_all, optimize=False)
        state = cache.get_state()
        cache2 = FactorCache()
        cache2.set_state(state)
        gp2 = _gp(unit_bounds3, cache2)
        gp2.kernel.theta = gp2.kernel.theta + 0.3
        gp2.fit(X_all, y_all, optimize=False)
        fresh = _gp(unit_bounds3)
        fresh.kernel.theta = fresh.kernel.theta + 0.3
        fresh.fit(X_all, y_all, optimize=False)
        assert gp2.L_.tobytes() == fresh.L_.tobytes()
        assert _counts(metrics)["miss"] >= 1.0

    def test_schema_mismatch_ignored(self):
        cache = FactorCache()
        cache.set_state({"schema": 999, "blocks": [1]})
        assert cache.get_state() is None


class TestSafeFitIntegration:
    def test_repair_rung_invalidates_cache(self, unit_bounds3):
        """Rung-2 data repair must drop cached inputs (they no longer
        match anything the optimizer will fit)."""
        X, y = _data(15, 10)
        cache = FactorCache()
        gp = _gp(unit_bounds3, cache)
        gp.fit(X, y, optimize=False)
        assert cache._fp is not None
        cache_before = cache._fp
        # degenerate data: duplicated rows with a huge outputscale push
        X_dup = np.vstack([X, X])
        y_dup = np.concatenate([y, y])
        safe_fit(gp, X_dup, y_dup, n_restarts=0, maxiter=5, seed=0)
        # whether or not the ladder fired, the cache is in a coherent
        # state: either invalidated or matching the latest inputs
        if cache._fp is not None and cache._fp == cache_before:
            assert cache._X is not None


class TestOptimizerWiring:
    def _make_opt(self, refit_every=1, factor_cache=True):
        from repro.core.kb_qego import KBqEGO

        problem = get_benchmark("sphere", dim=3)
        return KBqEGO(
            problem,
            n_batch=2,
            seed=7,
            gp_options={
                "refit_every": refit_every,
                "factor_cache": factor_cache,
                "n_restarts": 0,
                "maxiter": 15,
            },
        )

    def test_theta_frozen_refit_does_zero_refactorizations(self, metrics):
        """With refit_every=3, the two carried fits between full MLL
        optimizations must be pure cache hits (satellite regression:
        no silent fallback to O(n³) rebuilds)."""
        opt = self._make_opt(refit_every=3)
        rng = np.random.default_rng(0)
        X0 = rng.random((8, 3))
        y0 = opt.problem(X0)
        opt.initialize(X0, y0)
        for _ in range(3):
            proposal = opt.propose()
            opt.update(proposal.X, opt.problem(proposal.X))
        counts = _counts(metrics)
        # fit 0: full optimize → miss; fits 1-2: carried theta on grown
        # data → append (never a miss, never a hit on changed data)
        assert counts["miss"] == 1.0
        assert counts["append"] == 2.0
        assert counts["hit"] == 0.0

    def test_refit_state_round_trip(self):
        opt = self._make_opt(refit_every=3)
        rng = np.random.default_rng(1)
        X0 = rng.random((8, 3))
        y0 = opt.problem(X0)
        opt.initialize(X0, y0)
        opt.propose()
        assert opt._carried_theta is not None
        state = opt.get_state()
        assert "refit" in state

        opt2 = self._make_opt(refit_every=3)
        opt2.initialize(X0, y0)
        opt2.set_state(state)
        assert opt2._fits_since_full == opt._fits_since_full
        np.testing.assert_array_equal(opt2._carried_theta, opt._carried_theta)
        assert opt2._carried_log_noise == opt._carried_log_noise

    def test_default_config_state_unchanged(self):
        """refit_every=1 snapshots carry no new keys (golden traces)."""
        opt = self._make_opt(refit_every=1)
        rng = np.random.default_rng(2)
        X0 = rng.random((8, 3))
        y0 = opt.problem(X0)
        opt.initialize(X0, y0)
        opt.propose()
        state = opt.get_state()
        assert "refit" not in state
        assert "factor_cache" not in state

    def test_cache_disabled_by_option(self):
        opt = self._make_opt(factor_cache=False)
        assert opt._factor_cache is None

    def test_rff_backend_gets_no_cache(self):
        from repro.core.kb_qego import KBqEGO

        problem = get_benchmark("sphere", dim=3)
        opt = KBqEGO(
            problem, n_batch=2, seed=0, gp_options={"backend": "rff"}
        )
        assert opt._factor_cache is None


class TestFingerprint:
    def test_fingerprint_is_exact(self, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        fp1 = kernel_fingerprint(gp.kernel, gp.log_noise)
        fp2 = kernel_fingerprint(gp.kernel, gp.log_noise)
        assert fp1 == fp2
        gp.kernel.theta = gp.kernel.theta + 1e-15
        fp3 = kernel_fingerprint(gp.kernel, gp.log_noise)
        assert fp1 != fp3
