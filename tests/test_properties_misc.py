"""Cross-cutting property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BSPEGO
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.parallel import run_mpi
from repro.problems import get_benchmark


class TestBSPPartitionProperties:
    @settings(max_examples=10, deadline=None)
    @given(q=st.integers(1, 4), n_cycles=st.integers(1, 4),
           seed=st.integers(0, 100))
    def test_partition_stays_exact_under_evolution(self, q, n_cycles, seed):
        """However the partition evolves, the leaves always tile the
        domain: every interior point lies in exactly one box and the
        total volume is conserved."""
        problem = get_benchmark("sphere", dim=2)
        opt = BSPEGO(
            problem, q, seed=seed,
            acq_options={"n_restarts": 1, "raw_samples": 16, "maxiter": 8},
            gp_options={"n_restarts": 0, "maxiter": 10},
        )
        X0 = latin_hypercube(6, problem.bounds, seed=seed)
        opt.initialize(X0, problem(X0))
        rng = np.random.default_rng(seed)
        for _ in range(n_cycles):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        leaves = opt.leaves()
        total = sum(
            float(np.prod(l.bounds[:, 1] - l.bounds[:, 0])) for l in leaves
        )
        domain = float(np.prod(problem.upper - problem.lower))
        assert total == pytest.approx(domain, rel=1e-9)
        probes = rng.uniform(problem.lower, problem.upper, (200, 2))
        counts = np.zeros(200, dtype=int)
        for leaf in leaves:
            inside = np.all(
                (probes >= leaf.bounds[:, 0]) & (probes <= leaf.bounds[:, 1]),
                axis=1,
            )
            counts += inside
        assert np.all(counts >= 1)


class TestGPPosteriorProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), m=st.integers(1, 6))
    def test_posterior_variance_nonnegative_and_bounded(self, seed, m):
        """0 <= σ²(x) <= prior variance, for any query set."""
        rng = np.random.default_rng(seed)
        X = rng.random((15, 2))
        y = np.sin(5 * X[:, 0]) + X[:, 1]
        gp = GaussianProcess(dim=2, input_bounds=np.tile([0.0, 1.0], (2, 1)))
        gp.fit(X, y, optimize=False)
        Xq = rng.random((m, 2)) * 2.0 - 0.5  # includes out-of-box points
        _, sigma = gp.predict(Xq)
        prior_sd = gp._y_std * np.sqrt(
            gp.kernel.diag(gp._normalize_x(Xq))
        )
        assert np.all(sigma >= 0.0)
        assert np.all(sigma <= prior_sd + 1e-8)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_conditioning_never_increases_variance(self, seed):
        """Adding a (fantasy) observation cannot increase posterior
        variance anywhere — checked on a random probe set."""
        rng = np.random.default_rng(seed)
        X = rng.random((12, 2))
        y = X[:, 0] ** 2
        gp = GaussianProcess(dim=2, input_bounds=np.tile([0.0, 1.0], (2, 1)))
        gp.fit(X, y, optimize=False)
        x_new = rng.random((1, 2))
        augmented = gp.fantasize(x_new)
        probes = rng.random((30, 2))
        _, s_before = gp.predict(probes)
        _, s_after = augmented.predict(probes)
        assert np.all(s_after <= s_before + 1e-7)


class TestCommProperties:
    @settings(max_examples=10, deadline=None)
    @given(n_msgs=st.integers(1, 30), size=st.integers(2, 4))
    def test_fifo_per_pair_under_fanout(self, n_msgs, size):
        """Messages from rank 0 to each peer arrive in send order,
        whatever the interleaving across peers."""

        def prog(view):
            if view.rank == 0:
                for i in range(n_msgs):
                    for dst in range(1, view.size):
                        view.send((dst, i), dest=dst)
                return None
            got = [view.recv(source=0) for _ in range(n_msgs)]
            return got

        results = run_mpi(prog, size)
        for rank in range(1, size):
            assert results[rank] == [(rank, i) for i in range(n_msgs)]
