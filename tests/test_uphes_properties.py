"""Property-based tests of the UPHES simulator's economics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.uphes import MarketConfig, UPHESConfig, UPHESSimulator

#: One shared simulator (expensive to construct per example).
SIM = UPHESSimulator(seed=0, sim_time=0.0)


def _decision_arrays():
    energy = hnp.arrays(np.float64, (8,), elements=st.floats(-8.0, 8.0))
    reserve = hnp.arrays(np.float64, (4,), elements=st.floats(0.0, 4.0))
    return st.tuples(energy, reserve).map(lambda t: np.concatenate(t))


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(x=_decision_arrays())
    def test_profit_always_finite(self, x):
        assert np.isfinite(SIM(x[None, :])[0])

    @settings(max_examples=25, deadline=None)
    @given(x=_decision_arrays())
    def test_profit_bounded_by_gross_revenue(self, x):
        """Profit can never exceed selling the full committed energy
        plus full reserve at the most optimistic prices."""
        p_max = float(SIM.market.energy_price.max())
        r_max = float(SIM.market.reserve_price.max())
        gross = (
            np.sum(np.abs(x[:8])) * 3.0 * p_max
            + np.sum(x[8:]) * 6.0 * r_max
            + 100.0 * p_max  # generous cap on the terminal water value
        )
        assert SIM(x[None, :])[0] <= gross + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(x=_decision_arrays(), extra=st.floats(0.1, 3.9))
    def test_more_unbacked_reserve_never_helps_a_tripped_plant(
        self, x, extra
    ):
        """On a schedule whose energy blocks all trip (tiny commitments
        in the forbidden band), adding reserve on top can only reduce
        profit net of the capacity payment upper bound."""
        x = x.copy()
        x[:8] = np.sign(x[:8] + 1e-9) * 1.0  # 1 MW: inside every band gap
        base = x.copy()
        base[8:] = 0.0
        more = x.copy()
        more[8:] = np.minimum(base[8:] + extra, 4.0)
        cap_upper_bound = float(
            np.sum(more[8:] - base[8:]) * 6.0 * SIM.market.reserve_price.max()
        )
        assert SIM(more[None])[0] <= SIM(base[None])[0] + cap_upper_bound + 1e-6


class TestPenaltyMonotonicity:
    @pytest.mark.parametrize("mult", [1.5, 3.5, 6.0])
    def test_harsher_imbalance_never_raises_profit(self, mult, rng):
        """The imbalance term is a non-negative cost scaled by the
        multiplier, so profits are non-increasing in it."""
        base = UPHESSimulator(
            UPHESConfig(market=MarketConfig(imbalance_multiplier=1.0)),
            seed=0, sim_time=0.0,
        )
        harsh = UPHESSimulator(
            UPHESConfig(market=MarketConfig(imbalance_multiplier=mult)),
            seed=0, sim_time=0.0,
        )
        X = rng.uniform(SIM.lower, SIM.upper, (50, 12))
        assert np.all(harsh(X) <= base(X) + 1e-9)

    def test_feasible_schedule_immune_to_penalties(self):
        """A schedule that never trips pays no imbalance whatever the
        multiplier."""
        x = np.zeros((1, 12))
        x[0, 0] = -7.0
        x[0, 6] = 6.0
        a = UPHESSimulator(
            UPHESConfig(market=MarketConfig(imbalance_multiplier=1.0)),
            seed=0, sim_time=0.0,
        )(x)[0]
        b = UPHESSimulator(
            UPHESConfig(market=MarketConfig(imbalance_multiplier=8.0)),
            seed=0, sim_time=0.0,
        )(x)[0]
        assert a == pytest.approx(b, rel=1e-12)
