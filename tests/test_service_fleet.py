"""Tests for the fleet supervisor's heartbeat/restart state machine.

The supervisor is exercised against *fake* shards — real in-process
:class:`ServiceServer` sockets wrapped in the :class:`ShardProcess`
protocol — so death, wedging, restart, and checkpoint recovery run in
milliseconds without subprocesses. One test at the end spawns a real
``repro serve`` shard to cover the announce-file discovery path.
"""

import json
import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.service import (
    FleetSupervisor,
    ServiceClient,
    ServiceServer,
    SessionManager,
    ShardProcess,
)

SMALL_SPEC = {
    "problem": "sphere",
    "dim": 2,
    "algorithm": "random",
    "n_batch": 2,
    "n_initial": 4,
}


class FakeShard:
    """In-process stand-in for a shard subprocess.

    Persists to the same per-shard store a real shard would, so a
    "restarted" FakeShard recovers sessions from checkpoints exactly
    like a respawned process.
    """

    spawned = 0

    def __init__(self, index, store_dir):
        self.index = index
        self.store_dir = store_dir
        self.server = None
        self._alive = False
        self._wedged = False
        type(self).spawned += 1

    def start(self):
        manager = SessionManager(
            store_dir=self.store_dir / "sessions", fsync=False
        )
        self.server = ServiceServer(manager)
        self.server.start()
        self._alive = True

    @property
    def alive(self):
        return self._alive

    @property
    def pid(self):
        return 90000 + self.index

    def url(self):
        # Still announced while wedged — only the probe fails.
        return None if self.server is None else self.server.url

    def wedge(self):
        """Alive but unresponsive: the slow-shard failure mode."""
        self._wedged = True
        self.server.httpd.shutdown()

    def kill(self):
        if self._alive and self.server is not None:
            self.server.stop()
        self._alive = False

    def terminate(self):
        self.kill()

    def wait(self, timeout=None):
        return 0

    def send_signal(self, sig):  # pragma: no cover - not used by fakes
        pass


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture
def fleet(metrics, tmp_path):
    supervisor = FleetSupervisor(
        2,
        tmp_path,
        heartbeat_s=0.1,
        heartbeat_timeout_s=0.5,
        max_missed=2,
        startup_timeout_s=20.0,
        restart_backoff_s=0.05,
        shard_factory=lambda index, store: FakeShard(index, store),
    )
    with supervisor:
        yield supervisor


def wait_for(cond, timeout=20.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def event_kinds(supervisor, shard):
    return [e["kind"] for e in supervisor.events if e["shard"] == shard]


class TestSupervision:
    def test_all_shards_become_healthy(self, fleet):
        assert all(s.state == "healthy" for s in fleet.slots)
        assert all(
            slot["url"] is not None for slot in fleet.table.snapshot()
        )

    def test_dead_shard_is_detected_and_restarted(self, fleet):
        victim = fleet.slots[0]
        victim.handle.kill()
        wait_for(lambda: victim.restarts >= 1, what="restart")
        wait_for(lambda: victim.state == "healthy", what="re-health")
        kinds = event_kinds(fleet, 0)
        assert "dead" in kinds and "restart" in kinds
        assert kinds.index("dead") < kinds.index("restart")
        # the table followed the shard down and back up
        assert fleet.table.snapshot()[0]["url"] is not None

    def test_wedged_shard_goes_suspect_then_dead(self, fleet):
        victim = fleet.slots[1]
        victim.handle.wedge()
        wait_for(lambda: victim.restarts >= 1, what="restart after wedge")
        kinds = event_kinds(fleet, 1)
        assert "missed_heartbeat" in kinds
        assert "dead" in kinds
        wait_for(lambda: victim.state == "healthy", what="recovery")

    def test_restart_recovers_sessions_and_pending_tickets(self, fleet):
        client = ServiceClient(fleet.url, max_retries=4, backoff=0.1)
        client.create_session("recover-me", **SMALL_SPEC)
        ticket, x = client.ask("recover-me", 1)[0]
        owner = fleet.router.ring.owner("recover-me")
        victim = fleet.slots[owner]
        generation = victim.restarts
        victim.handle.kill()
        wait_for(lambda: victim.restarts > generation, what="restart")
        wait_for(lambda: victim.state == "healthy", what="re-health")
        # the pre-crash ticket is honoured by the recovered shard
        result = client.tell("recover-me", ticket, float(np.sum(x**2)))
        assert result["status"] == "accepted"
        status = client.session_status("recover-me")
        assert status["n_pending"] == 0
        counters = status["counters"]
        assert counters["asks"] == counters["tells"] + counters["requeues"]

    def test_down_shard_answers_503_until_recovered(self, fleet):
        from repro.service import ServiceClientError

        client = ServiceClient(fleet.url, max_retries=0)
        client.create_session("s503", **SMALL_SPEC)
        owner = fleet.router.ring.owner("s503")
        victim = fleet.slots[owner]
        victim.handle.kill()
        wait_for(lambda: victim.state == "dead" or victim.restarts >= 1,
                 what="death detection")
        if victim.state == "dead":
            with pytest.raises(ServiceClientError) as exc:
                client.ask("s503")
            assert exc.value.status == 503
        wait_for(lambda: victim.state == "healthy", what="recovery")
        assert client.ask("s503", 1)

    def test_describe_reports_states_and_events(self, fleet):
        info = fleet.describe()
        assert len(info["shards"]) == 2
        assert all(s["state"] == "healthy" for s in info["shards"])
        assert any(e["kind"] == "spawn" for e in info["recent_events"])

    def test_router_status_embeds_supervisor(self, fleet):
        client = ServiceClient(fleet.url, max_retries=0)
        status = client.server_status()
        assert status["role"] == "fleet-router"
        assert len(status["supervisor"]["shards"]) == 2


class TestShardProcessReal:
    def test_subprocess_shard_announces_and_serves(self, tmp_path):
        shard = ShardProcess(0, tmp_path / "shard-00")
        shard.start()
        try:
            deadline = time.monotonic() + 60.0
            url = None
            while time.monotonic() < deadline and url is None:
                url = shard.url()
                time.sleep(0.1)
            assert url is not None, "shard never announced"
            announce = json.loads(
                (tmp_path / "shard-00" / "announce.json").read_text()
            )
            assert announce["pid"] == shard.pid
            client = ServiceClient(url, max_retries=2, backoff=0.2)
            assert client.server_status()["draining"] is False
            assert shard.alive
        finally:
            shard.terminate()
            assert shard.wait(timeout=30.0) == 0
