"""Driver supervisor, worker death, and adaptive-timeout tests."""

import json

import numpy as np
import pytest

from repro.core import SupervisorConfig, make_optimizer, run_optimization
from repro.core.driver import AnalyticTimeModel
from repro.core.supervision import CycleSupervisor
from repro.parallel import RuntimeQuantiles, SimulatedCluster, VirtualClock
from repro.problems import get_benchmark
from repro.resilience import FaultSpec, RunJournal
from repro.util import ConfigurationError

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 16},
    "gp_options": {"n_restarts": 0, "maxiter": 15},
}


def _events(path):
    return [json.loads(line) for line in open(path)]


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(max_sick_cycles=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(quarantine_cycles=-1)


class TestCycleSupervisor:
    def _supervisor(self, config=None, journal=None):
        problem = get_benchmark("sphere", dim=2)
        optimizer = make_optimizer("kb_qego", problem, 2, seed=0, **FAST)
        return CycleSupervisor(
            config or SupervisorConfig(), problem, optimizer, journal=journal
        )

    def test_healthy_propose_passes_through_and_consumes_no_extra_rng(self):
        problem = get_benchmark("sphere", dim=2)

        def make(seed):
            opt = make_optimizer("kb_qego", problem, 2, seed=seed, **FAST)
            X0 = np.random.default_rng(5).random((8, 2))
            opt.initialize(X0, problem(X0))
            return opt

        plain = make(0)
        supervised = make(0)
        sup = CycleSupervisor(SupervisorConfig(), problem, supervised)
        X_plain = plain.propose().X
        X_sup = sup.propose(1).X
        np.testing.assert_array_equal(X_plain, X_sup)
        assert sup.fail_streak == 0
        # The RNG streams must remain in lockstep after supervision.
        assert plain.rng.bit_generator.state == supervised.rng.bit_generator.state

    def test_failing_propose_degrades_to_random_batch(self):
        sup = self._supervisor()
        sup.optimizer.propose = lambda: (_ for _ in ()).throw(
            RuntimeError("model exploded")
        )
        proposal = sup.propose(1)
        assert proposal.X.shape == (2, 2)
        assert proposal.info["fallback"] == "propose_failed"
        assert sup.fail_streak == 1
        assert np.all(np.isfinite(proposal.X))

    def test_persistent_sickness_triggers_quarantine_then_recovery(self):
        config = SupervisorConfig(max_sick_cycles=2, quarantine_cycles=3)
        sup = self._supervisor(config)
        sup.optimizer.propose = lambda: (_ for _ in ()).throw(
            RuntimeError("still sick")
        )
        sup.propose(1)
        sup.propose(2)  # second failure -> quarantine armed
        assert sup.quarantine_remaining == 3
        for cycle in range(3, 6):
            proposal = sup.propose(cycle)
            assert proposal.info["fallback"] == "quarantine"
        assert sup.quarantine_remaining == 0

        # After quarantine the (healed) model is trusted again.
        problem = sup.problem
        X0 = np.random.default_rng(1).random((8, 2))
        sup.optimizer.initialize(X0, problem(X0))
        del sup.optimizer.propose  # restore the real method
        proposal = sup.propose(6)
        assert "fallback" not in proposal.info
        assert sup.fail_streak == 0

    def test_adapt_workers_shrinks_batch_and_journals(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, fsync=False)
        sup = self._supervisor(journal=journal)
        sup.adapt_workers(alive=1, cycle=4)
        assert sup.optimizer.n_batch == 1
        ev = _events(path)[0]
        assert ev["event"] == "degradation"
        assert ev["kind"] == "worker_death"
        assert ev["q_from"] == 2 and ev["q_to"] == 1

    def test_adapt_workers_noop_when_all_alive(self):
        sup = self._supervisor()
        sup.adapt_workers(alive=2, cycle=1)
        assert sup.optimizer.n_batch == 2
        assert sup.n_degradations == 0

    def test_state_roundtrip(self):
        sup = self._supervisor()
        sup.fail_streak = 2
        sup.quarantine_remaining = 4
        sup.optimizer.n_batch = 1
        state = sup.state()
        other = self._supervisor()
        other.restore(state)
        assert other.fail_streak == 2
        assert other.quarantine_remaining == 4
        assert other.optimizer.n_batch == 1


class TestWorkerDeath:
    def test_cluster_loses_workers_permanently(self):
        from repro.resilience.faults import FaultySimulatedCluster

        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        cluster = FaultySimulatedCluster(
            4, clock=VirtualClock(),
            spec=FaultSpec(death_rate=0.9, seed=0),
        )
        X = np.random.default_rng(0).random((4, 2))
        cluster.evaluate(problem, X)
        assert 1 <= cluster.alive_workers < 4
        alive_after_first = cluster.alive_workers
        for _ in range(5):
            cluster.evaluate(problem, X)
        assert cluster.alive_workers <= alive_after_first
        assert cluster.alive_workers >= 1  # the last worker never dies

    def test_dead_workers_slow_the_batch(self):
        cluster = SimulatedCluster(4, clock=VirtualClock())
        full = cluster.batch_duration(4, 10.0)
        cluster.alive_workers = 1
        degraded = cluster.batch_duration(4, 10.0)
        assert degraded > full  # 4 serial waves instead of 1

    def test_zero_death_rate_preserves_fault_stream(self):
        # The death draw must not consume fault randomness when
        # disabled, or existing fault-injection runs would change.
        from repro.resilience.faults import FaultySimulatedCluster

        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        X = np.random.default_rng(0).random((4, 2))

        def run(spec):
            cluster = FaultySimulatedCluster(
                4, clock=VirtualClock(), spec=spec
            )
            for _ in range(3):
                cluster.evaluate(problem, X)
            return cluster.n_faults, cluster.fault_rng.bit_generator.state

        old = run(FaultSpec(nan_rate=0.3, seed=7))
        new = run(FaultSpec(nan_rate=0.3, seed=7, death_rate=0.0))
        assert old == new

    def test_elastic_shrink_in_full_run(self, tmp_path):
        problem = get_benchmark("ackley", dim=2, sim_time=10.0)
        optimizer = make_optimizer("kb_qego", problem, 3, seed=3, **FAST)
        path = tmp_path / "run.jsonl"
        result = run_optimization(
            problem, optimizer, 150.0, n_initial=6, seed=0,
            time_model=AnalyticTimeModel(),
            journal=RunJournal(path, fsync=False),
            faults=FaultSpec(death_rate=0.5, seed=2),
        )
        assert result.n_cycles > 0
        events = _events(path)
        shrinks = [
            ev for ev in events
            if ev["event"] == "degradation" and ev.get("kind") == "worker_death"
        ]
        assert shrinks, "worker deaths must journal an elastic shrink"
        assert optimizer.n_batch < 3
        assert events[-1]["event"] == "run_completed"


class TestSupervisedResume:
    def test_kill_and_resume_equivalence_on_degraded_run(self, tmp_path):
        """PR-1's acceptance property must survive supervision: a run
        whose every cycle journals degradations (flat objective ->
        passive health flags) resumes bit-exactly."""
        from repro.problems import FunctionProblem
        from repro.resilience import resume_run

        bounds = np.tile([0.0, 1.0], (2, 1))

        def flat(X):
            return np.zeros(np.atleast_2d(X).shape[0])

        def make_problem():
            return FunctionProblem(flat, bounds, sim_time=10.0)

        def make_opt(problem):
            return make_optimizer("kb_qego", problem, 2, seed=3, **FAST)

        problem = make_problem()
        reference = run_optimization(
            problem, make_opt(problem), 150.0, n_initial=6, seed=0,
            time_model=AnalyticTimeModel(),
        )

        class KillSwitch:
            def __init__(self, inner, n_calls):
                self.inner = inner
                self.n_calls = n_calls
                self.calls = 0

            def __call__(self, X):
                self.calls += np.atleast_2d(X).shape[0]
                if self.calls > self.n_calls:
                    raise KeyboardInterrupt("simulated kill")
                return self.inner(X)

            def __getattr__(self, attr):
                return getattr(self.inner, attr)

        path = tmp_path / "run.jsonl"
        killer = KillSwitch(make_problem(), 14)
        with pytest.raises(KeyboardInterrupt):
            run_optimization(
                killer, make_opt(killer), 150.0, n_initial=6, seed=0,
                time_model=AnalyticTimeModel(),
                journal=RunJournal(path, fsync=False),
            )
        resumed = resume_run(
            path, problem=make_problem(), fsync=False,
            optimizer_kwargs=FAST,
        )
        assert resumed.n_cycles == reference.n_cycles
        assert resumed.best_value == reference.best_value
        assert np.array_equal(resumed.best_x, reference.best_x)
        # The degraded cycles were journaled before and after the kill.
        degradations = [
            ev for ev in _events(path) if ev["event"] == "degradation"
        ]
        assert degradations


class TestRuntimeQuantiles:
    def test_returns_default_until_min_samples(self):
        rq = RuntimeQuantiles(min_samples=5)
        for _ in range(4):
            rq.observe(10.0)
        assert rq.timeout(default=60.0) == 60.0

    def test_learns_tighter_timeout(self):
        rq = RuntimeQuantiles(quantile=0.95, multiplier=3.0, min_samples=5)
        for _ in range(10):
            rq.observe(10.0)
        assert rq.timeout(default=60.0) == pytest.approx(30.0)

    def test_never_exceeds_static_limit(self):
        rq = RuntimeQuantiles(min_samples=2)
        for _ in range(5):
            rq.observe(100.0)
        assert rq.timeout(default=60.0) == 60.0

    def test_window_tracks_drift(self):
        rq = RuntimeQuantiles(min_samples=2, window=4)
        for _ in range(10):
            rq.observe(50.0)
        for _ in range(4):
            rq.observe(1.0)
        assert rq.quantile_value() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeQuantiles(quantile=1.5)
        with pytest.raises(ConfigurationError):
            RuntimeQuantiles(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RuntimeQuantiles(window=2, min_samples=8)
        with pytest.raises(ConfigurationError):
            RuntimeQuantiles().observe(-1.0)

    def test_adaptive_timeout_cuts_hung_simulations_sooner(self):
        from repro.resilience.faults import FaultySimulatedCluster, RetryPolicy

        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        spec = FaultSpec(timeout_rate=0.3, timeout=60.0, seed=0,
                         adaptive_timeout=True)

        cluster = FaultySimulatedCluster(
            4, clock=VirtualClock(), spec=spec,
            retry=RetryPolicy(max_attempts=1),
        )
        X = np.random.default_rng(0).random((4, 2))
        # Warm up the runtime estimate past min_samples.
        for _ in range(4):
            cluster.evaluate(problem, X)
        assert cluster.effective_timeout() == pytest.approx(30.0)
        assert cluster.effective_timeout() < spec.timeout
