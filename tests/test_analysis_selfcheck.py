"""The linter's own dogfood: ``repro lint src`` is clean vs the
committed baseline, and that cleanliness is *tight* — removing any
single baseline entry or inline suppression resurfaces a finding at
exactly the recorded location.
"""

from __future__ import annotations

import dataclasses
import re
import tokenize
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_BASELINE,
    analyze_file,
    analyze_paths,
    apply_baseline,
    load_baseline,
)
from repro.analysis.engine import SUPPRESS_RE

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
BASELINE = REPO / DEFAULT_BASELINE


@pytest.fixture(scope="module")
def findings():
    # The committed baseline records repo-relative paths (the CLI is run
    # from the repo root); scanning from an absolute root here, so
    # relativize before matching.
    return [
        dataclasses.replace(f, path=Path(f.path).relative_to(REPO).as_posix())
        for f in analyze_paths([SRC]).findings
    ]


@pytest.fixture(scope="module")
def entries():
    return load_baseline(BASELINE)


class TestRepoIsClean:
    def test_src_clean_against_committed_baseline(self, findings, entries):
        new, _, stale = apply_baseline(findings, entries)
        assert new == [], "un-baselined findings:\n" + "\n".join(
            f"  {f.location()}: {f.rule} {f.message}" for f in new
        )
        assert stale == [], "stale baseline entries:\n" + "\n".join(
            f"  {e['path']}:{e['line']}: {e['rule']}" for e in stale
        )

    def test_baseline_is_nonempty_and_deterministically_ordered(self, entries):
        assert entries, "baseline should grandfather the audited findings"
        keys = [(e["path"], e["line"], e["rule"]) for e in entries]
        assert keys == sorted(keys)


class TestBaselineIsTight:
    def test_removing_any_entry_resurfaces_that_finding(self, findings, entries):
        """Every grandfathered finding still exists: drop one entry and
        the lint goes red with a finding at exactly that path:line."""
        for i, removed in enumerate(entries):
            remaining = entries[:i] + entries[i + 1:]
            new, _, stale = apply_baseline(findings, remaining)
            assert stale == []
            assert len(new) == 1
            got = new[0]
            assert (got.rule, got.path, got.line) == (
                removed["rule"], removed["path"], removed["line"]
            )


def iter_suppressed_sources():
    """(path, lineno) for every inline repro-lint suppression in src/.

    Tokenizes rather than greps so directive syntax quoted in docstrings
    (the engine documents its own convention) is not mistaken for a
    live suppression.
    """
    for path in sorted(SRC.rglob("*.py")):
        with tokenize.open(path) as handle:
            for tok in tokenize.generate_tokens(handle.readline):
                if tok.type == tokenize.COMMENT and SUPPRESS_RE.search(
                    tok.string
                ):
                    yield path, tok.start[0]


class TestSuppressionsAreTight:
    def test_src_has_inline_suppressions(self):
        assert list(iter_suppressed_sources()), (
            "expected at least one inline suppression in src/"
        )

    def test_stripping_any_suppression_resurfaces_a_finding(self, tmp_path):
        """Each ``# repro-lint: disable=`` in src/ is load-bearing: copy
        the file with that one directive removed and the suppressed
        finding comes back."""
        strip = re.compile(r"#\s*repro-lint:\s*disable=\S+.*$")
        for n, (path, lineno) in enumerate(iter_suppressed_sources()):
            lines = path.read_text().splitlines(keepends=True)
            target = lines[lineno - 1]
            stripped = strip.sub("# (suppression removed)", target)
            assert stripped != target
            lines[lineno - 1] = stripped
            copy = tmp_path / f"case_{n}" / path.relative_to(SRC)
            copy.parent.mkdir(parents=True, exist_ok=True)
            copy.write_text("".join(lines))

            baseline_findings, _ = analyze_file(path, roots=[SRC])
            edited_findings, _ = analyze_file(copy, roots=[copy.parent])
            assert len(edited_findings) > len(baseline_findings), (
                f"suppression at {path}:{lineno} suppresses nothing"
            )
