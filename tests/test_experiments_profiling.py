"""Tests for the per-phase breakdown tables (repro.experiments.profiling)."""

import pytest

from repro.experiments import Campaign, get_preset
from repro.experiments.profiling import (
    profiling_table,
    record_breakdown,
    trace_breakdown_text,
)
from repro.experiments.records import RunRecord


def make_record(algorithm="TuRBO", n_batch=4, seed=0, problem="ackley",
                preset="smoke"):
    return RunRecord(
        problem=problem,
        algorithm=algorithm,
        n_batch=n_batch,
        seed=seed,
        preset=preset,
        maximize=False,
        best_value=1.0,
        initial_best=5.0,
        best_x=[0.0, 0.0],
        n_initial=8,
        n_cycles=3,
        n_simulations=12,
        elapsed=40.0,
        budget=40.0,
        sim_time=10.0,
        time_scale=1.0,
        trajectory=[3.0, 2.0, 1.0],
        fit_times=[0.5, 0.6, 0.7],
        acq_times=[0.3, 0.3, 0.4],
        acq_charged=[0.8, 0.9, 1.1],  # fit + acq charged together
        evals_after_cycle=[12, 16, 20],
    )


class TestRecordBreakdown:
    def test_totals(self):
        bd = record_breakdown(make_record())
        assert bd["fit_s"] == pytest.approx(1.8)
        assert bd["acq_s"] == pytest.approx(1.0)
        # Charged master time is acq_charged alone — the driver already
        # folds the fit charge into it; no double counting.
        assert bd["charged_s"] == pytest.approx(2.8)
        assert bd["sim_s"] == pytest.approx(40.0 - 2.8)
        assert bd["overhead_frac"] == pytest.approx(2.8 / 40.0)

    def test_zero_elapsed(self):
        rec = make_record()
        rec.elapsed = 0.0
        rec.acq_charged = []
        assert record_breakdown(rec)["overhead_frac"] == 0.0


class TestProfilingTable:
    def test_renders_cached_cells(self, tmp_path):
        campaign = Campaign(get_preset("smoke"), root=tmp_path,
                            verbose=False)
        for algo in ("TuRBO", "KB-q-EGO"):
            for q in (1, 4):
                for seed in (0, 1):
                    campaign._store(
                        make_record(algorithm=algo, n_batch=q, seed=seed)
                    )
        text = profiling_table(campaign, problem="ackley")
        assert "Per-phase time breakdown — ackley" in text
        assert "overhead share" in text
        lines = [ln for ln in text.splitlines() if ln.startswith("TuRBO")]
        assert len(lines) == 2  # one row per cached batch size
        assert "7.0%" in lines[0]  # 2.8 / 40.0
        # Uncached algorithms simply don't appear.
        assert "BSP-EGO" not in text

    def test_empty_campaign_renders_header_only(self, tmp_path):
        campaign = Campaign(get_preset("smoke"), root=tmp_path,
                            verbose=False)
        text = profiling_table(campaign)
        assert "Per-phase time breakdown" in text


class TestTraceBreakdownText:
    def test_from_trace_file(self, tmp_path):
        from repro.obs import Tracer, write_trace_jsonl

        t = Tracer()
        with t.span("cycle", cycle=1):
            with t.span("fit"):
                pass
            with t.span("evaluate", cycle=1):
                pass
        path = write_trace_jsonl(t, tmp_path / "t.jsonl")
        text = trace_breakdown_text(path)
        assert text.splitlines()[1].startswith("cycle")
        assert "1" in text

    def test_empty_trace(self, tmp_path):
        from repro.obs import Tracer, write_trace_jsonl

        path = write_trace_jsonl(Tracer(), tmp_path / "empty.jsonl")
        assert "no cycle-correlated" in trace_breakdown_text(path)
