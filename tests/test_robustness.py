"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest

from repro.core import make_optimizer, run_optimization
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.problems import FunctionProblem, get_benchmark
from repro.util import ValidationError

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


class TestNonFiniteGuards:
    def test_gp_rejects_nan_targets(self, rng, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        y = rng.random(10)
        y[3] = np.nan
        with pytest.raises(ValidationError):
            gp.fit(rng.random((10, 3)), y, optimize=False)

    def test_gp_rejects_inf_inputs(self, rng, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        X = rng.random((10, 3))
        X[0, 0] = np.inf
        with pytest.raises(ValidationError):
            gp.fit(X, rng.random(10), optimize=False)

    def test_optimizer_rejects_nan_observations(self, rng):
        problem = get_benchmark("sphere", dim=3)
        opt = make_optimizer("turbo", problem, 2, seed=0, **FAST)
        X0 = latin_hypercube(8, problem.bounds, seed=0)
        y0 = problem(X0)
        y0[0] = np.nan
        with pytest.raises(ValidationError):
            opt.initialize(X0, y0)

    def test_driver_surfaces_nan_simulator(self):
        """A simulator that goes NaN mid-run must be surfaced loudly —
        warned about and guarded, never fed to the surrogate silently
        (and fatal when the run opts into ``on_nonfinite="raise"``)."""

        def make_flaky():
            calls = {"n": 0}

            def flaky(X):
                calls["n"] += 1
                y = np.sum(X**2, axis=1)
                if calls["n"] > 3:
                    y[0] = np.nan
                return y

            return flaky

        bounds = np.tile([0.0, 1.0], (3, 1))
        problem = FunctionProblem(make_flaky(), bounds, sim_time=10.0)
        opt = make_optimizer("random", problem, 2, seed=0)
        with pytest.warns(RuntimeWarning, match="non-finite"):
            result = run_optimization(problem, opt, 200.0, seed=0)
        assert np.isfinite(result.best_value)

        from repro.util import EvaluationError

        problem = FunctionProblem(make_flaky(), bounds, sim_time=10.0)
        opt = make_optimizer("random", problem, 2, seed=0)
        with pytest.raises(EvaluationError):
            with pytest.warns(RuntimeWarning, match="non-finite"):
                run_optimization(problem, opt, 200.0, seed=0,
                                 on_nonfinite="raise")


class TestDegenerateData:
    def test_gp_with_two_points(self, rng, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.fit(rng.random((2, 3)), rng.random(2), n_restarts=0, maxiter=10)
        mu, s = gp.predict(rng.random((4, 3)))
        assert np.all(np.isfinite(mu)) and np.all(np.isfinite(s))

    def test_gp_with_duplicated_inputs(self, rng, unit_bounds3):
        x = rng.random((1, 3))
        X = np.repeat(x, 5, axis=0)
        y = rng.random(5)
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.fit(X, y, n_restarts=0, maxiter=20)
        mu, s = gp.predict(x)
        assert np.isfinite(mu[0]) and np.isfinite(s[0])

    def test_optimizer_with_constant_objective(self):
        """A flat landscape must not crash the acquisition loop."""
        problem = FunctionProblem(
            lambda X: np.full(X.shape[0], 7.0), np.tile([0.0, 1.0], (3, 1))
        )
        opt = make_optimizer("kb-q-ego", problem, 2, seed=0, **FAST)
        X0 = latin_hypercube(8, problem.bounds, seed=0)
        opt.initialize(X0, problem(X0))
        prop = opt.propose()
        assert np.all(np.isfinite(prop.X))

    def test_turbo_on_tiny_initial_design(self):
        problem = get_benchmark("sphere", dim=3)
        opt = make_optimizer("turbo", problem, 2, seed=0, **FAST)
        X0 = latin_hypercube(3, problem.bounds, seed=0)
        opt.initialize(X0, problem(X0))
        prop = opt.propose()
        assert prop.X.shape == (2, 3)


class TestSampleF:
    def test_shape(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        s = gp.sample_f(rng.random((6, 3)), n_samples=4, seed=0)
        assert s.shape == (4, 6)

    def test_mean_converges(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        X = rng.random((3, 3))
        s = gp.sample_f(X, n_samples=4000, seed=0)
        mu, _ = gp.predict(X)
        np.testing.assert_allclose(s.mean(axis=0), mu, atol=0.1)

    def test_seeded(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        X = rng.random((3, 3))
        a = gp.sample_f(X, 5, seed=9)
        b = gp.sample_f(X, 5, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_interpolates_training_data(self, fitted_gp):
        gp, X, y = fitted_gp
        s = gp.sample_f(X[:4], n_samples=500, seed=1)
        spread = s.std(axis=0)
        # posterior samples at training points have small spread
        _, s_pred = gp.predict(X[:4])
        np.testing.assert_allclose(spread, s_pred, rtol=0.3, atol=0.02)
