"""Tests for repro.util.validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    ValidationError,
    check_bounds,
    check_finite,
    check_matrix,
    check_positive,
    check_vector,
)


class TestCheckVector:
    def test_list_converted(self):
        v = check_vector([1, 2, 3])
        assert v.dtype == np.float64
        assert v.shape == (3,)

    def test_dim_enforced(self):
        with pytest.raises(ValidationError):
            check_vector([1.0, 2.0], dim=3)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            check_vector(np.zeros((2, 2)))


class TestCheckMatrix:
    def test_1d_promoted_to_row(self):
        m = check_matrix([1.0, 2.0])
        assert m.shape == (1, 2)

    def test_cols_enforced(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((3, 2)), cols=4)

    def test_empty_rejected_by_default(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((0, 3)))

    def test_empty_allowed_when_opted_in(self):
        m = check_matrix(np.zeros((0, 3)), allow_empty=True)
        assert m.shape == (0, 3)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_contiguous_output(self):
        m = check_matrix(np.asfortranarray(np.ones((4, 3))))
        assert m.flags["C_CONTIGUOUS"]


class TestCheckFinite:
    def test_passes_finite(self):
        check_finite([1.0, 2.0])

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ValidationError):
            check_finite([1.0, bad])


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad)


class TestCheckBounds:
    def test_basic(self):
        b = check_bounds([[0, 1], [-1, 2]])
        assert b.shape == (2, 2)

    def test_transposed_convention_accepted(self):
        b = check_bounds(np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]]))
        assert b.shape == (3, 2)
        np.testing.assert_array_equal(b[:, 0], [0, 0, 0])

    def test_dim_enforced(self):
        with pytest.raises(ValidationError):
            check_bounds([[0, 1]], dim=2)

    def test_degenerate_rejected(self):
        with pytest.raises(ValidationError):
            check_bounds([[1.0, 1.0]])

    def test_inverted_rejected(self):
        with pytest.raises(ValidationError):
            check_bounds([[2.0, 1.0]])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            check_bounds([[0.0, np.inf]])

    @given(
        lo=st.floats(-1e6, 1e6 - 1),
        width=st.floats(1e-6, 1e6),
        d=st.integers(1, 8),
    )
    def test_property_roundtrip(self, lo, width, d):
        b = check_bounds(np.tile([lo, lo + width], (d, 1)))
        assert b.shape == (d, 2)
        assert np.all(b[:, 0] < b[:, 1])
