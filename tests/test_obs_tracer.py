"""Unit tests for the span tracer (repro.obs.tracer)."""

from __future__ import annotations

import pytest

from repro.obs.tracer import (
    NOOP_SPAN,
    NULL_TRACER,
    SPAN_NAMES,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    trace_event,
    trace_span,
)
from repro.parallel.clock import VirtualClock
from repro.util import ConfigurationError


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


class TestSpanNesting:
    def test_parent_links_follow_the_stack(self):
        t = Tracer()
        with t.span("cycle", cycle=1) as outer:
            with t.span("fit") as mid:
                with t.span("gp_fit") as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.id
        assert inner.parent_id == mid.id
        # Completion order: innermost first.
        assert [s.name for s in t.spans] == ["gp_fit", "fit", "cycle"]

    def test_sequential_deterministic_ids(self):
        t = Tracer()
        ids = []
        for _ in range(5):
            with t.span("x") as sp:
                ids.append(sp.id)
        assert ids == [0, 1, 2, 3, 4]

    def test_siblings_share_parent(self):
        t = Tracer()
        with t.span("cycle") as parent:
            with t.span("fit") as a:
                pass
            with t.span("evaluate") as b:
                pass
        assert a.parent_id == parent.id == b.parent_id

    def test_out_of_order_exit_does_not_corrupt_stack(self):
        t = Tracer()
        outer = t.span("outer")
        inner = t.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Exiting the outer span first pops the leaked inner one too.
        outer.__exit__(None, None, None)
        assert t.current is None
        with t.span("next") as nxt:
            assert nxt.parent_id is None

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("cycle"):
                raise ValueError("boom")
        assert t.current is None
        assert t.spans[0].t_wall_end is not None


class TestTimestamps:
    def test_wall_duration_positive(self):
        t = Tracer()
        with t.span("x") as sp:
            sum(range(1000))
        assert sp.wall_duration > 0.0
        assert sp.wall_duration == sp.t_wall_end - sp.t_wall

    def test_virtual_clock_attached(self):
        clock = VirtualClock()
        t = Tracer()
        t.attach_clock(clock)
        with t.span("evaluate") as sp:
            clock.advance(10.0)
        assert sp.t_virtual == 0.0
        assert sp.t_virtual_end == 10.0
        assert sp.virtual_duration == 10.0

    def test_no_clock_means_no_virtual_times(self):
        t = Tracer()
        with t.span("x") as sp:
            pass
        assert sp.t_virtual is None
        assert sp.virtual_duration is None


class TestAttributesAndEvents:
    def test_attrs_at_creation_and_via_set(self):
        t = Tracer()
        with t.span("fit", n_train=32) as sp:
            sp.set(mll=-1.5).set(degraded=False)
        assert sp.attrs == {"n_train": 32, "mll": -1.5, "degraded": False}

    def test_event_is_zero_length_child(self):
        t = Tracer()
        with t.span("cycle") as parent:
            t.event("degradation", kind="variance_collapse")
        ev = t.by_name("degradation")[0]
        assert ev.parent_id == parent.id
        assert ev.t_wall_end is not None

    def test_max_spans_cap_counts_drops(self):
        t = Tracer(max_spans=2)
        for _ in range(5):
            with t.span("x"):
                pass
        assert len(t.spans) == 2
        assert t.n_dropped == 3

    def test_clear(self):
        t = Tracer()
        with t.span("x"):
            pass
        t.clear()
        assert t.spans == [] and t.n_dropped == 0

    def test_invalid_max_spans(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)


class TestGlobalInstallation:
    def test_default_is_null(self):
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_trace_span_routes_to_installed(self):
        t = Tracer()
        previous = set_tracer(t)
        assert previous is not None
        with trace_span("fit", cycle=2) as sp:
            pass
        trace_event("tick")
        assert sp in t.spans
        assert t.by_name("tick")

    def test_disabled_path_returns_shared_noop(self):
        set_tracer(None)
        sp = trace_span("fit", cycle=1)
        assert sp is NOOP_SPAN
        # All chainable no-ops; nothing recorded anywhere.
        with sp as inner:
            inner.set(a=1).event("x", b=2)
        assert NULL_TRACER.spans == []

    def test_null_tracer_api_is_inert(self):
        n = NullTracer()
        n.attach_clock(VirtualClock())
        n.event("x")
        assert n.by_name("x") == []
        n.clear()

    def test_set_tracer_returns_previous(self):
        a, b = Tracer(), Tracer()
        set_tracer(a)
        assert set_tracer(b) is a
        assert get_tracer() is b


def test_builtin_taxonomy_is_stable():
    """DESIGN §10 documents these names; renaming breaks trace readers."""
    assert set(SPAN_NAMES) >= {
        "cycle", "propose", "fit", "safe_fit", "gp_fit", "acq_optimize",
        "fantasy_update", "evaluate", "checkpoint", "dispatch", "refit",
        "executor",
    }
