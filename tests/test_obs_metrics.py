"""Property suite for the metrics layer (satellite of the obs PR).

The load-bearing claim: :class:`StreamingQuantiles` — and everything
built on it (histograms, the executor's adaptive-timeout
:class:`~repro.parallel.supervision.RuntimeQuantiles`) — computes
*exactly* ``numpy.quantile`` over its window, across sizes,
distributions, and window overflow. Hypothesis drives the shapes;
numpy is the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    StreamingQuantiles,
)
from repro.parallel.supervision import RuntimeQuantiles
from repro.util import ConfigurationError

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
quantile_floats = st.floats(min_value=0.0, max_value=1.0)


# ----------------------------------------------------------------------
# StreamingQuantiles vs numpy
# ----------------------------------------------------------------------
class TestStreamingQuantilesProperties:
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=200),
        q=quantile_floats,
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_numpy_within_window(self, values, q):
        sq = StreamingQuantiles(window=256)
        for v in values:
            sq.observe(v)
        expected = float(np.quantile(np.asarray(values, dtype=np.float64), q))
        assert sq.quantile(q) == pytest.approx(expected, rel=1e-12, abs=1e-12)

    @given(
        values=st.lists(finite_floats, min_size=1, max_size=300),
        window=st.integers(min_value=1, max_value=64),
        q=quantile_floats,
    )
    @settings(max_examples=200, deadline=None)
    def test_window_overflow_keeps_most_recent(self, values, window, q):
        sq = StreamingQuantiles(window=window)
        for v in values:
            sq.observe(v)
        tail = np.asarray(values[-window:], dtype=np.float64)
        assert len(sq) == tail.size
        assert sq.n_total == len(values)
        assert sq.quantile(q) == pytest.approx(
            float(np.quantile(tail, q)), rel=1e-12, abs=1e-12
        )

    @given(values=st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_vector_quantiles(self, values):
        sq = StreamingQuantiles(window=128)
        for v in values:
            sq.observe(v)
        qs = np.asarray([0.0, 0.25, 0.5, 0.75, 0.9, 1.0])
        result = sq.quantile(qs)
        np.testing.assert_allclose(
            result, np.quantile(np.asarray(values, dtype=np.float64), qs)
        )

    @given(
        dist=st.sampled_from(["uniform", "lognormal", "bimodal", "constant"]),
        n=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_distribution_shapes(self, dist, n, seed):
        rng = np.random.default_rng(seed)
        if dist == "uniform":
            values = rng.uniform(-5, 5, size=n)
        elif dist == "lognormal":
            values = rng.lognormal(0.0, 2.0, size=n)
        elif dist == "bimodal":
            values = np.where(
                rng.random(n) < 0.5,
                rng.normal(-10, 1, size=n),
                rng.normal(10, 1, size=n),
            )
        else:
            values = np.full(n, 3.25)
        sq = StreamingQuantiles(window=4096)
        for v in values:
            sq.observe(float(v))
        for q in (0.05, 0.5, 0.95, 0.99):
            assert sq.quantile(q) == pytest.approx(
                float(np.quantile(values, q)), rel=1e-10, abs=1e-10
            )

    def test_empty_and_validation(self):
        sq = StreamingQuantiles()
        assert sq.quantile(0.5) is None
        assert sq.snapshot() == {"count": 0}
        with pytest.raises(ConfigurationError):
            sq.observe(float("nan"))
        with pytest.raises(ConfigurationError):
            sq.observe(float("inf"))
        with pytest.raises(ConfigurationError):
            StreamingQuantiles(window=0)

    @given(values=st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_snapshot_consistency(self, values):
        sq = StreamingQuantiles(window=4096)
        for v in values:
            sq.observe(v)
        snap = sq.snapshot()
        arr = np.asarray(values, dtype=np.float64)
        assert snap["count"] == len(values)
        assert snap["min"] == arr.min()
        assert snap["max"] == arr.max()
        assert snap["p95"] == pytest.approx(float(np.quantile(arr, 0.95)))


# ----------------------------------------------------------------------
# RuntimeQuantiles rides on the same estimator
# ----------------------------------------------------------------------
class TestRuntimeQuantilesUnified:
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_value_matches_numpy(self, durations):
        rq = RuntimeQuantiles(quantile=0.95, min_samples=1, window=256)
        for d in durations:
            rq.observe(d)
        tail = np.asarray(durations[-256:], dtype=np.float64)
        assert rq.n_samples == tail.size
        assert rq.quantile_value() == pytest.approx(
            float(np.quantile(tail, 0.95)), rel=1e-12, abs=1e-12
        )

    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=8,
            max_size=100,
        ),
        default=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_timeout_never_exceeds_static(self, durations, default):
        rq = RuntimeQuantiles(min_samples=8)
        for d in durations:
            rq.observe(d)
        limit = rq.timeout(default)
        assert limit <= default
        assert limit == pytest.approx(
            min(default, 3.0 * rq.quantile_value())
        )

    def test_below_min_samples_uses_default(self):
        rq = RuntimeQuantiles(min_samples=8)
        for d in (1.0, 2.0, 3.0):
            rq.observe(d)
        assert rq.timeout(123.0) == 123.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            RuntimeQuantiles().observe(-0.5)


# ----------------------------------------------------------------------
# Histogram / Counter / Gauge / registry
# ----------------------------------------------------------------------
class TestHistogram:
    @given(values=st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_whole_stream_aggregates(self, values):
        h = Histogram("h", window=32)  # window smaller than the stream
        for v in values:
            h.observe(v)
        arr = np.asarray(values, dtype=np.float64)
        assert h.count == len(values)
        assert h.sum == pytest.approx(float(arr.sum()), rel=1e-9, abs=1e-6)
        # min/max are whole-stream even when the window has rolled.
        assert h.min == arr.min()
        assert h.max == arr.max()
        tail = arr[-32:]
        assert h.quantile(0.5) == pytest.approx(float(np.median(tail)))

    def test_snapshot_shape(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 6.0
        assert {"min", "max", "mean", "p50", "p95"} <= set(snap)


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        assert g.value is None
        g.set(4)
        g.set(7.5)
        assert g.value == 7.5


class TestRegistry:
    def test_name_bound_to_kind(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ConfigurationError):
            reg.histogram("x")
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_round_trips_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(0.25)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["a"] == {"kind": "counter", "value": 2.0}
        assert snap["b"]["value"] == 1.5
        assert snap["c"]["kind"] == "histogram"
        assert reg.names() == ["a", "b", "c"]

    def test_null_registry_is_inert(self):
        null = NullMetrics()
        assert not null.enabled
        assert NULL_METRICS.counter("x") is NULL_METRICS.histogram("y")
        null.counter("x").inc()
        null.histogram("y").observe(1.0)
        null.gauge("z").set(2.0)
        assert null.snapshot() == {}
        assert null.names() == []


class TestMergeSnapshots:
    """Cross-shard snapshot merging for the fleet's GET /metrics."""

    def make_shard(self, counter_n, latencies):
        registry = MetricsRegistry()
        registry.counter("ask.requests").inc(counter_n)
        hist = registry.histogram("ask.latency_s")
        for v in latencies:
            hist.observe(v)
        registry.gauge("sessions").set(counter_n)
        return registry.snapshot()

    def test_counters_sum_and_histograms_pool(self):
        from repro.obs import merge_snapshots

        a = self.make_shard(3, [0.1, 0.2])
        b = self.make_shard(5, [0.4])
        merged = merge_snapshots([a, b])
        assert merged["ask.requests"]["value"] == 8
        assert merged["ask.requests"]["shards"] == 2
        hist = merged["ask.latency_s"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.7)
        assert hist["max"] == pytest.approx(0.4)
        # p99 is the max across shards: conservative for SLO checks
        assert hist["p99"] >= max(a["ask.latency_s"]["p99"],
                                  b["ask.latency_s"]["p99"]) - 1e-12
        assert merged["sessions"]["value"] == 8

    def test_disjoint_names_union(self):
        from repro.obs import merge_snapshots

        a = self.make_shard(1, [0.1])
        b = {"other.counter": {"kind": "counter", "value": 2}}
        merged = merge_snapshots([a, b])
        assert merged["other.counter"]["value"] == 2
        assert merged["ask.requests"]["value"] == 1

    def test_kind_conflict_is_a_typed_error(self):
        from repro.obs import merge_snapshots

        a = {"m": {"kind": "counter", "value": 1}}
        b = {"m": {"kind": "gauge", "value": 2}}
        with pytest.raises(ConfigurationError):
            merge_snapshots([a, b])

    def test_empty_input(self):
        from repro.obs import merge_snapshots

        assert merge_snapshots([]) == {}


class TestRegistryThreadSafety:
    """Regression: instrument creation raced under the threaded HTTP
    server — two threads hitting ``counter(name)`` on a fresh name each
    built an instrument, and increments on the loser were dropped when
    its dict write was overwritten."""

    def test_concurrent_first_use_creates_one_instrument(self):
        import threading

        registry = MetricsRegistry()
        n_threads, n_incs = 8, 200
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()  # maximize overlap on the first-use race
            for _ in range(n_incs):
                registry.counter("race.requests").inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert registry.counter("race.requests").value == n_threads * n_incs

    def test_concurrent_mixed_kind_raises_for_losers_only(self):
        import threading

        registry = MetricsRegistry()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes: list[str] = []
        lock = threading.Lock()

        def claim(kind):
            barrier.wait()
            try:
                getattr(registry, kind)("race.kind")
                result = kind
            except ConfigurationError:
                result = "error"
            with lock:
                outcomes.append(result)

        threads = [
            threading.Thread(
                target=claim, args=("counter" if i % 2 else "gauge",)
            )
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Exactly one kind won; every thread of the other kind got the
        # typed error, never a silently-replaced instrument.
        winners = {o for o in outcomes if o != "error"}
        assert len(winners) == 1
        assert len([o for o in outcomes if o != "error"]) == n_threads // 2

    def test_snapshot_during_concurrent_creation(self):
        import threading

        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def create():
            i = 0
            while not stop.is_set() and i < 500:
                registry.counter(f"churn.{i}").inc()
                i += 1

        def snapshot():
            try:
                while not stop.is_set():
                    registry.snapshot()
            except BaseException as exc:  # pragma: no cover - fail signal
                errors.append(exc)
                raise

        creator = threading.Thread(target=create)
        snapper = threading.Thread(target=snapshot)
        snapper.start()
        creator.start()
        creator.join()
        stop.set()
        snapper.join()
        assert not errors
        assert len(registry.names()) == 500
