"""Kill-and-resume equivalence over scenario-bundle objectives.

The satellite acceptance for the SeedSequence lineage: a journaled run
on a regime-bundle workload, killed mid-flight, resumes *without being
handed the problem object* — the journaled ``problem_spec`` rebuilds
the exact fleet (markets, groundwater tables, event masks) and the
continued run reaches bit-for-bit the uninterrupted incumbent.
"""

import numpy as np
import pytest

from repro.core import AnalyticTimeModel, make_optimizer, run_optimization
from repro.resilience import RunJournal, read_events, resume_run
from repro.resilience.resume import rebuild_problem
from repro.scenarios import (
    FleetSimulator,
    MultiObjectiveProblem,
    build_problem,
    compact,
    get_scenario,
)
from repro.uphes import UPHESSimulator

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 32},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}
SEED = 3
BUDGET = 80.0


class KillSwitch:
    """Problem wrapper raising once after ``n_calls`` evaluations."""

    def __init__(self, inner, n_calls):
        self.inner = inner
        self.n_calls = n_calls
        self.calls = 0

    def __call__(self, X):
        self.calls += np.atleast_2d(X).shape[0]
        if self.calls > self.n_calls:
            raise KeyboardInterrupt("simulated kill")
        return self.inner(X)

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def _spec():
    return compact(get_scenario("seasonal"), 4)


def _run(problem, journal=None):
    optimizer = make_optimizer("turbo", problem, 2, seed=SEED, **FAST)
    return run_optimization(
        problem,
        optimizer,
        BUDGET,
        n_initial=8,
        seed=SEED,
        time_model=AnalyticTimeModel(),
        journal=journal,
    )


class TestScenarioKillAndResume:
    def test_resume_rebuilds_fleet_from_journaled_spec(self, tmp_path):
        reference = _run(build_problem(_spec()))

        path = tmp_path / "run.jsonl"
        killer = KillSwitch(build_problem(_spec()), 12)
        with pytest.raises(KeyboardInterrupt):
            _run(killer, journal=RunJournal(path, fsync=False))

        # No problem handed over: the journal's problem_spec is the
        # only way resume can know what to rebuild.
        resumed = resume_run(path, fsync=False, optimizer_kwargs=FAST)
        assert resumed.best_value == reference.best_value
        assert np.array_equal(resumed.best_x, reference.best_x)
        assert resumed.n_cycles == reference.n_cycles
        assert [(r.cycle, r.best_value) for r in resumed.history] == [
            (r.cycle, r.best_value) for r in reference.history
        ]

    def test_journal_records_the_spec(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _run(build_problem(_spec()), journal=RunJournal(path, fsync=False))
        events = read_events(path)
        config = events[0]["config"]
        assert config["problem_spec"] == _spec().to_dict()

    def test_plain_runs_have_no_spec_key(self, tmp_path):
        from repro.problems import get_benchmark

        path = tmp_path / "run.jsonl"
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        _run(problem, journal=RunJournal(path, fsync=False))
        assert "problem_spec" not in read_events(path)[0]["config"]


class TestRebuildProblem:
    def test_spec_takes_precedence(self):
        spec = get_scenario("stress")
        config = {
            "problem": "scenario:stress",
            "sim_time": 10.0,
            "problem_spec": spec.to_dict(),
        }
        problem = rebuild_problem(config)
        assert isinstance(problem, FleetSimulator)
        assert problem.spec == spec

    def test_degenerate_spec_rebuilds_plain_simulator(self):
        spec = get_scenario("paper")
        problem = rebuild_problem({"problem_spec": spec.to_dict()})
        assert isinstance(problem, UPHESSimulator)
        assert problem.spec == spec

    def test_multi_spec_rebuilds_mo_problem(self):
        spec = get_scenario("mo")
        problem = rebuild_problem({"problem_spec": spec.to_dict()})
        assert isinstance(problem, MultiObjectiveProblem)

    def test_rebuild_is_bit_deterministic(self):
        spec = compact(get_scenario("stress"), 4)
        a = rebuild_problem({"problem_spec": spec.to_dict()})
        b = rebuild_problem({"problem_spec": spec.to_dict()})
        rng = np.random.default_rng(0)
        X = rng.uniform(a.bounds[:, 0], a.bounds[:, 1], size=(6, a.dim))
        assert np.array_equal(a.evaluate(X), b.evaluate(X))

    def test_by_name_path_still_works(self):
        problem = rebuild_problem(
            {"problem": "sphere", "sim_time": 10.0, "dim": 3}
        )
        assert problem.dim == 3
