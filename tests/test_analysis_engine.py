"""Engine mechanics: baseline round-trip, matching, and output formats."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Finding,
    apply_baseline,
    format_github,
    format_json,
    format_text,
    load_baseline,
    render_baseline,
    save_baseline,
)
from repro.util.errors import ConfigurationError


def make_finding(rule="CLK-001", path="src/a.py", line=3, col=1,
                 message="wall-clock read"):
    return Finding(rule=rule, path=path, line=line, col=col,
                   message=message, snippet="t = time.time()")


class TestBaselineRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [make_finding(line=9), make_finding(line=3)]
        save_baseline(path, findings)
        entries = load_baseline(path)
        assert [e["line"] for e in entries] == [3, 9]  # sorted
        assert all(set(e) == {"rule", "path", "line", "message"}
                   for e in entries)

    def test_rewrite_is_byte_identical(self, tmp_path):
        """No timestamps, no environment: same findings → same bytes."""
        path = tmp_path / "baseline.json"
        findings = [make_finding(line=9), make_finding(line=3),
                    make_finding(rule="ATM-001", path="src/b.py")]
        save_baseline(path, findings)
        first = path.read_bytes()
        save_baseline(path, list(reversed(findings)))
        assert path.read_bytes() == first
        # And the rendered text is exactly what landed on disk.
        assert render_baseline(findings).encode() == first

    def test_versioned_and_rejects_junk(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [])
        assert json.loads(path.read_text())["version"] == 1

        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_baseline(path)

        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)

        path.write_text(json.dumps(
            {"version": 1, "findings": [{"rule": "X"}]}
        ))
        with pytest.raises(ConfigurationError):
            load_baseline(path)


class TestApplyBaseline:
    def test_matching_splits_new_and_baselined(self):
        known = make_finding(line=3)
        fresh = make_finding(line=44)
        entries = [{"rule": known.rule, "path": known.path,
                    "line": known.line}]
        new, baselined, stale = apply_baseline([known, fresh], entries)
        assert new == [fresh]
        assert baselined == [known]
        assert stale == []

    def test_stale_entries_reported(self):
        entries = [{"rule": "CLK-001", "path": "src/gone.py", "line": 1}]
        new, baselined, stale = apply_baseline([], entries)
        assert (new, baselined) == ([], [])
        assert stale == entries

    def test_duplicate_keys_matched_as_multiset(self):
        # Two identical (rule, path, line) findings + one entry:
        # exactly one is grandfathered, the other is new.
        f = make_finding()
        entries = [{"rule": f.rule, "path": f.path, "line": f.line}]
        new, baselined, _ = apply_baseline([f, f], entries)
        assert len(baselined) == 1
        assert len(new) == 1

    def test_message_change_does_not_invalidate(self):
        f = make_finding(message="reworded since the audit")
        entries = [{"rule": f.rule, "path": f.path, "line": f.line,
                    "message": "original wording"}]
        new, baselined, _ = apply_baseline([f], entries)
        assert new == [] and baselined == [f]


class TestFormats:
    def test_text_has_location_and_snippet(self):
        out = format_text([make_finding()])
        assert "src/a.py:3:1: CLK-001" in out
        assert "t = time.time()" in out

    def test_github_workflow_command(self):
        out = format_github([make_finding()])
        assert out.startswith("::error file=src/a.py,line=3,col=1,"
                              "title=CLK-001::")

    def test_json_is_parseable_and_counted(self):
        payload = json.loads(format_json(
            [make_finding()], baselined=2, suppressed=1
        ))
        assert payload["n_findings"] == 1
        assert payload["n_baselined"] == 2
        assert payload["n_suppressed"] == 1
        assert payload["findings"][0]["rule"] == "CLK-001"
