"""Unit tests for trace export/aggregation (repro.obs.export)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    breakdown_csv,
    correlate_with_journal,
    cycle_breakdown,
    phase_summary,
    read_trace,
    span_to_dict,
    summary_csv,
    summary_markdown,
    write_trace_jsonl,
)
from repro.obs.tracer import Tracer
from repro.parallel.clock import VirtualClock


def make_trace(n_cycles: int = 3) -> Tracer:
    """A synthetic nested trace shaped like the synchronous driver's."""
    clock = VirtualClock()
    t = Tracer()
    t.attach_clock(clock)
    for cycle in range(1, n_cycles + 1):
        with t.span("cycle", cycle=cycle):
            with t.span("propose", cycle=cycle):
                with t.span("fit"):       # inherits cycle from ancestors
                    with t.span("gp_fit", n_train=10 * cycle):
                        pass
                with t.span("acq_optimize", q=2):
                    pass
                with t.span("fantasy_update", m=1):
                    pass
            with t.span("evaluate", cycle=cycle, q=2):
                clock.advance(10.0)
            with t.span("checkpoint", cycle=cycle, snapshot=True):
                pass
    return t


class TestJsonlRoundTrip:
    def test_write_and_read(self, tmp_path):
        t = make_trace()
        path = write_trace_jsonl(t, tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["span"] == "trace_header"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["n_spans"] == len(t.spans)
        assert header["n_dropped"] == 0
        records = read_trace(path)
        assert len(records) == len(t.spans)
        # Every line is valid standalone JSON with the core fields.
        for rec in records:
            assert {"span", "id", "parent", "t_wall", "wall_s"} <= set(rec)

    def test_span_to_dict_includes_virtual_interval(self):
        t = make_trace(1)
        ev = next(s for s in t.spans if s.name == "evaluate")
        rec = span_to_dict(ev)
        assert rec["virtual_s"] == pytest.approx(10.0)
        assert rec["cycle"] == 1
        json.dumps(rec)  # JSON-serializable

    def test_creates_parent_dirs(self, tmp_path):
        t = make_trace(1)
        path = write_trace_jsonl(t, tmp_path / "deep" / "dir" / "t.jsonl")
        assert path.exists()


class TestPhaseSummary:
    def test_summary_from_spans_and_dicts_agree(self, tmp_path):
        t = make_trace()
        from_spans = phase_summary(t.spans)
        path = write_trace_jsonl(t, tmp_path / "t.jsonl")
        from_dicts = phase_summary(read_trace(path))
        assert set(from_spans) == set(from_dicts)
        for name in from_spans:
            assert from_spans[name]["count"] == from_dicts[name]["count"]

    def test_statistics_against_numpy(self):
        spans = [
            {"span": "fit", "wall_s": w} for w in (1.0, 2.0, 3.0, 10.0)
        ]
        row = phase_summary(spans)["fit"]
        vals = np.array([1.0, 2.0, 3.0, 10.0])
        assert row["count"] == 4
        assert row["total_s"] == vals.sum()
        assert row["mean_s"] == vals.mean()
        assert row["median_s"] == np.median(vals)
        assert row["p95_s"] == pytest.approx(np.quantile(vals, 0.95))
        assert row["max_s"] == 10.0

    def test_sorted_by_total_descending(self):
        spans = [
            {"span": "small", "wall_s": 0.1},
            {"span": "big", "wall_s": 5.0},
            {"span": "mid", "wall_s": 1.0},
        ]
        assert list(phase_summary(spans)) == ["big", "mid", "small"]

    def test_renderers(self):
        summary = phase_summary(make_trace().spans)
        md = summary_markdown(summary)
        assert md.startswith("### ")
        assert "| fit |" in md
        csv = summary_csv(summary)
        header, *rows = csv.splitlines()
        assert header == "phase,count,total_s,mean_s,median_s,p95_s,max_s"
        assert len(rows) == len(summary)


class TestCycleBreakdown:
    def test_nested_spans_inherit_cycle_from_ancestors(self):
        t = make_trace(3)
        rows = cycle_breakdown(t.spans)
        assert [r["cycle"] for r in rows] == [1, 2, 3]
        for row in rows:
            # fit has no cycle attr of its own — inherited via parents.
            assert row["fit_s"] > 0.0
            assert row["evaluate_s"] > 0.0
            assert set(row) == {
                "cycle", "fit_s", "acq_optimize_s", "fantasy_update_s",
                "evaluate_s", "checkpoint_s",
            }

    def test_orphan_spans_skipped(self):
        spans = [{"span": "fit", "wall_s": 1.0, "id": 0, "parent": None}]
        assert cycle_breakdown(spans) == []

    def test_async_index_key(self):
        spans = [
            {"span": "dispatch", "wall_s": 0.0, "id": 0, "parent": None,
             "index": 4},
            {"span": "acq_optimize", "wall_s": 0.5, "id": 1, "parent": 0},
        ]
        rows = cycle_breakdown(spans)
        assert rows == [
            {"cycle": 4, "fit_s": 0.0, "acq_optimize_s": 0.5,
             "fantasy_update_s": 0.0, "evaluate_s": 0.0,
             "checkpoint_s": 0.0}
        ]

    def test_breakdown_csv(self):
        rows = cycle_breakdown(make_trace(2).spans)
        text = breakdown_csv(rows)
        lines = text.splitlines()
        assert lines[0].startswith("cycle,fit_s,")
        assert len(lines) == 3


class TestJournalCorrelation:
    def test_join_on_cycle_id(self):
        t = make_trace(3)
        journal = [
            {"event": "run_started"},
            {"event": "cycle", "cycle": 1, "best_value": 5.0},
            {"event": "cycle", "cycle": 2, "best_value": 4.0},
            {"event": "run_completed"},
        ]
        joined = correlate_with_journal(t.spans, journal)
        # Cycle 3 has no journal event; cycles 1-2 join.
        assert set(joined) == {1, 2}
        assert joined[1]["journal"]["best_value"] == 5.0
        assert joined[2]["phases"]["evaluate"] > 0.0
