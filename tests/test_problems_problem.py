"""Tests for the Problem abstraction."""

import numpy as np
import pytest

from repro.problems import FunctionProblem, Problem
from repro.util import ValidationError


@pytest.fixture
def prob():
    return FunctionProblem(
        lambda X: np.sum(X**2, axis=1),
        bounds=[[-1, 2], [0, 4]],
        name="quad",
        sim_time=3.0,
        optimum=0.0,
    )


class TestBasics:
    def test_dim_and_bounds(self, prob):
        assert prob.dim == 2
        np.testing.assert_array_equal(prob.lower, [-1, 0])
        np.testing.assert_array_equal(prob.upper, [2, 4])

    def test_call_single_row(self, prob):
        assert prob([[1.0, 2.0]])[0] == 5.0

    def test_call_1d_promoted(self, prob):
        assert prob([1.0, 2.0])[0] == 5.0

    def test_wrong_cols_rejected(self, prob):
        with pytest.raises(ValidationError):
            prob(np.zeros((1, 3)))

    def test_negative_sim_time_rejected(self):
        with pytest.raises(ValidationError):
            FunctionProblem(lambda X: X[:, 0], [[0, 1]], sim_time=-1.0)

    def test_bad_return_shape_detected(self):
        bad = FunctionProblem(lambda X: np.zeros((2, 2)), [[0, 1], [0, 1]])
        with pytest.raises(ValidationError):
            bad(np.zeros((3, 2)))

    def test_evaluate_not_implemented_on_base(self):
        base = Problem([[0, 1]])
        with pytest.raises(NotImplementedError):
            base(np.zeros((1, 1)))


class TestGeometry:
    def test_clip(self, prob):
        out = prob.clip([[-5.0, 10.0]])
        np.testing.assert_array_equal(out, [[-1.0, 4.0]])

    def test_contains(self, prob):
        mask = prob.contains([[0.0, 1.0], [3.0, 1.0]])
        assert mask.tolist() == [True, False]

    def test_normalize_denormalize_roundtrip(self, prob, rng):
        X = rng.uniform(prob.lower, prob.upper, (20, 2))
        back = prob.denormalize(prob.normalize(X))
        np.testing.assert_allclose(back, X, rtol=1e-12)

    def test_normalize_maps_corners(self, prob):
        u = prob.normalize([prob.lower, prob.upper])
        np.testing.assert_allclose(u, [[0, 0], [1, 1]])
