"""Tests specific to BSP-EGO's partition machinery."""

import numpy as np
import pytest

from repro.core import BSPEGO
from repro.doe import latin_hypercube
from repro.problems import get_benchmark
from repro.util import ConfigurationError


def _bsp(q=2, seed=0, regions_per_worker=2):
    problem = get_benchmark("sphere", dim=3)
    opt = BSPEGO(problem, q, seed=seed, regions_per_worker=regions_per_worker,
                 acq_options={"n_restarts": 2, "raw_samples": 32, "maxiter": 15},
                 gp_options={"n_restarts": 0, "maxiter": 20})
    X0 = latin_hypercube(10, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


def _partition_is_exact(opt, rng, n_probe=500):
    """Every probe point lies in exactly one leaf box."""
    problem = opt.problem
    probes = rng.uniform(problem.lower, problem.upper, (n_probe, problem.dim))
    leaves = opt.leaves()
    counts = np.zeros(n_probe, dtype=int)
    for leaf in leaves:
        lo, hi = leaf.bounds[:, 0], leaf.bounds[:, 1]
        inside = np.all((probes >= lo) & (probes <= hi), axis=1)
        counts += inside
    # boundary points can be double counted; interior ones must be 1
    return np.all(counts >= 1) and np.mean(counts == 1) > 0.95


class TestPartition:
    def test_initial_leaf_count(self):
        _, opt = _bsp(q=4, regions_per_worker=2)
        assert len(opt.leaves()) == 8

    def test_minimum_two_regions(self):
        _, opt = _bsp(q=1)
        assert len(opt.leaves()) == 2

    def test_leaves_cover_domain(self, rng):
        _, opt = _bsp(q=2)
        assert _partition_is_exact(opt, rng)

    def test_leaf_count_constant_across_cycles(self, rng):
        problem, opt = _bsp(q=2)
        n = len(opt.leaves())
        for _ in range(4):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
            assert len(opt.leaves()) == n
            assert _partition_is_exact(opt, rng)

    def test_partition_evolves(self):
        problem, opt = _bsp(q=2)
        boxes_before = {tuple(map(tuple, l.bounds)) for l in opt.leaves()}
        for _ in range(3):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        boxes_after = {tuple(map(tuple, l.bounds)) for l in opt.leaves()}
        assert boxes_before != boxes_after

    def test_invalid_regions_per_worker(self):
        problem = get_benchmark("sphere", dim=3)
        with pytest.raises(ConfigurationError):
            BSPEGO(problem, 2, regions_per_worker=0)


class TestParallelAccounting:
    def test_durations_reported_per_region(self):
        _, opt = _bsp(q=2)
        prop = opt.propose()
        assert prop.acq_durations is not None
        assert len(prop.acq_durations) == len(opt.leaves())
        assert all(d >= 0 for d in prop.acq_durations)
        assert prop.acq_time == pytest.approx(sum(prop.acq_durations), rel=1e-6)

    def test_scores_assigned_during_propose(self):
        """Every region is scored during propose; the evolution step
        then replaces at most three scored leaves (the merged pair's
        parent and the split winner's two children are fresh)."""
        _, opt = _bsp(q=2)
        opt.propose()
        unscored = sum(1 for l in opt.leaves() if not np.isfinite(l.score))
        assert unscored <= 3
