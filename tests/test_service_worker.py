"""Tests for the worker evaluation loop (repro.service.worker)."""

import numpy as np
import pytest

from repro.service import (
    ServiceClient,
    ServiceServer,
    SessionManager,
    run_worker,
)
from repro.service.worker import WorkerStats
from repro.util import ConfigurationError

SMALL_SPEC = {
    "problem": "sphere",
    "dim": 2,
    "algorithm": "random",
    "n_batch": 2,
    "n_initial": 4,
}


@pytest.fixture
def service():
    manager = SessionManager()
    with ServiceServer(manager) as server:
        client = ServiceClient(server.url, max_retries=0)
        client.create_session("w", **SMALL_SPEC)
        yield server, client, manager


class TestWorkerStats:
    def test_record_tallies_by_status(self):
        stats = WorkerStats()
        for s in ("accepted", "accepted", "dropped", "expired", "duplicate"):
            stats.record(s)
        assert stats.n_told == 3  # accepted + dropped both consume budget
        assert stats.n_dropped == 1
        assert stats.n_expired == 1
        assert stats.n_duplicate == 1
        assert stats.statuses == {
            "accepted": 2, "dropped": 1, "expired": 1, "duplicate": 1,
        }


class TestRunWorker:
    def test_budget_required(self):
        with pytest.raises(ConfigurationError, match="budget"):
            run_worker("http://127.0.0.1:1", "w")

    def test_completes_eval_budget(self, service):
        server, client, _ = service
        stats = run_worker(server.url, "w", max_evals=6, backoff_s=0.01)
        assert stats.n_told == 6
        assert stats.n_asked == 6
        status = client.session_status("w")
        assert status["counters"]["tells"] == 6
        assert status["n_pending"] == 0

    def test_injected_evaluator_is_used(self, service):
        server, client, _ = service
        seen = []

        def fake(x):
            seen.append(x.copy())
            return 42.0

        stats = run_worker(server.url, "w", max_evals=3, evaluator=fake)
        assert stats.n_told == 3
        assert len(seen) == 3
        assert client.best("w")["y"] == 42.0

    def test_backpressure_backs_off_and_recovers(self, service):
        server, client, _ = service
        client2 = ServiceClient(server.url, max_retries=0)
        client2.create_session("tight", **SMALL_SPEC, max_pending=2)
        # Fill the in-flight cap from outside the worker...
        stuck = client2.ask("tight", 2)
        naps = []

        def sleep(dt):
            naps.append(dt)
            # ...and release a slot the first time the worker backs off.
            if len(naps) == 1:
                ticket, x = stuck.pop()
                client2.tell("tight", ticket, float(np.sum(x**2)))

        stats = run_worker(
            server.url, "tight", max_evals=2, backoff_s=0.01, sleep=sleep
        )
        assert stats.n_backoff >= 1
        assert stats.n_told == 2

    def test_expired_tickets_counted_not_fatal(self, service):
        server, client, _ = service
        client2 = ServiceClient(server.url, max_retries=0)
        client2.create_session("fast", **SMALL_SPEC, ask_timeout=0.05)

        def slow_eval(x):
            import time

            time.sleep(0.2)  # holds the ticket past ask_timeout
            return float(np.sum(x**2))

        stats = run_worker(
            server.url, "fast", max_evals=None, deadline_s=1.0,
            evaluator=slow_eval, backoff_s=0.01,
        )
        assert stats.n_expired >= 1
        assert client2.session_status("fast")["counters"]["requeues"] >= 1

    def test_draining_server_ends_the_loop_cleanly(self, service):
        server, client, _ = service
        evals = []

        def eval_then_drain(x):
            evals.append(x)
            if len(evals) == 2:
                client.shutdown()
            return float(np.sum(x**2))

        worker_client = ServiceClient(server.url, max_retries=0)
        stats = run_worker(
            server.url, "w", max_evals=100,
            client=worker_client, evaluator=eval_then_drain,
        )
        assert 2 <= stats.n_asked <= 3  # stopped on 503, not on budget
