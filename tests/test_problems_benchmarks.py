"""Tests for the benchmark functions (paper Table 1 + extras)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.problems import (
    BENCHMARKS,
    ackley,
    get_benchmark,
    griewank,
    levy,
    rastrigin,
    rosenbrock,
    schwefel,
    sphere,
)
from repro.util import ConfigurationError


class TestKnownOptima:
    def test_rosenbrock_at_ones(self):
        assert rosenbrock(np.ones((1, 12)))[0] == pytest.approx(0.0, abs=1e-12)

    def test_ackley_at_origin(self):
        assert ackley(np.zeros((1, 12)))[0] == pytest.approx(0.0, abs=1e-9)

    def test_schwefel_at_known_minimizer(self):
        x = np.full((1, 12), 420.9687463)
        assert schwefel(x)[0] == pytest.approx(0.0, abs=1e-3)

    def test_sphere_at_origin(self):
        assert sphere(np.zeros((1, 5)))[0] == 0.0

    def test_rastrigin_at_origin(self):
        assert rastrigin(np.zeros((1, 7)))[0] == pytest.approx(0.0, abs=1e-12)

    def test_griewank_at_origin(self):
        assert griewank(np.zeros((1, 4)))[0] == pytest.approx(0.0, abs=1e-12)

    def test_levy_at_ones(self):
        assert levy(np.ones((1, 6)))[0] == pytest.approx(0.0, abs=1e-12)


class TestVectorization:
    @pytest.mark.parametrize("func", [rosenbrock, ackley, schwefel, sphere,
                                      rastrigin, griewank, levy])
    def test_batch_matches_rowwise(self, func, rng):
        X = rng.uniform(-4, 4, (10, 6))
        batch = func(X)
        rows = np.array([func(x[None, :])[0] for x in X])
        np.testing.assert_allclose(batch, rows, rtol=1e-12)

    @pytest.mark.parametrize("func", [rosenbrock, ackley, schwefel])
    def test_output_shape(self, func, rng):
        X = rng.uniform(-1, 1, (7, 12))
        assert func(X).shape == (7,)


class TestNonNegativity:
    """All registered benchmarks have f_min = 0 -> values are >= ~0."""

    @settings(max_examples=50, deadline=None)
    @given(
        X=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(2, 12)),
            elements=st.floats(-500, 500),
        )
    )
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_never_below_optimum(self, name, X):
        func, (lo, hi), fmin = BENCHMARKS[name]
        Xc = np.clip(X, lo, hi)
        vals = func(Xc)
        assert np.all(vals >= fmin - 1e-6)


class TestGetBenchmark:
    def test_default_dim_is_12(self):
        p = get_benchmark("ackley")
        assert p.dim == 12

    def test_paper_domains(self):
        assert get_benchmark("rosenbrock").bounds[0].tolist() == [-5.0, 10.0]
        assert get_benchmark("ackley").bounds[0].tolist() == [-5.0, 10.0]
        assert get_benchmark("schwefel").bounds[0].tolist() == [-500.0, 500.0]

    def test_sim_time_propagated(self):
        assert get_benchmark("ackley", sim_time=10.0).sim_time == 10.0

    def test_case_insensitive(self):
        assert get_benchmark("AckLey").name == "ackley"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("nope")

    def test_too_small_dim_raises(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("ackley", dim=1)

    def test_optimum_recorded(self):
        assert get_benchmark("schwefel").optimum == 0.0
