"""Tests for the fleet front door: ring, limiters, and the proxy.

The FleetRouter integration tests run against two real in-process
:class:`ServiceServer` shards — actual sockets, no subprocesses — so
routing, relaying, error passthrough, and admission behave exactly as
in the multi-process fleet, just faster.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.service import (
    AdmissionGate,
    FleetRouter,
    HashRing,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SessionManager,
    ShardTable,
    TokenBucket,
)

SMALL_SPEC = {
    "problem": "sphere",
    "dim": 2,
    "algorithm": "random",
    "n_batch": 2,
    "n_initial": 4,
}


class TestHashRing:
    def test_deterministic_and_in_range(self):
        ring = HashRing(4)
        owners = [ring.owner(f"session-{i}") for i in range(50)]
        assert owners == [HashRing(4).owner(f"session-{i}") for i in range(50)]
        assert all(0 <= o < 4 for o in owners)

    def test_spreads_load(self):
        ring = HashRing(4)
        owners = [ring.owner(f"s{i}") for i in range(400)]
        counts = [owners.count(k) for k in range(4)]
        assert min(counts) > 0  # every shard owns something
        assert max(counts) < 400 * 0.6  # nothing owns a supermajority

    def test_resize_moves_few_keys(self):
        # Consistent hashing: growing 4 -> 5 shards should remap about
        # 1/5 of keys, far from the ~4/5 a modulo scheme would move.
        keys = [f"k{i}" for i in range(1000)]
        a, b = HashRing(4), HashRing(5)
        moved = sum(a.owner(k) != b.owner(k) for k in keys)
        assert moved < 450

    def test_single_shard(self):
        ring = HashRing(1)
        assert {ring.owner(f"x{i}") for i in range(10)} == {0}


class TestTokenBucket:
    def test_burst_then_refusal_with_wait_hint(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take()[0]
        assert bucket.try_take()[0]
        ok, wait = bucket.try_take()
        assert not ok and wait > 0.0
        now[0] += wait
        assert bucket.try_take()[0]

    def test_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=lambda: now[0])
        for _ in range(4):
            assert bucket.try_take()[0]
        now[0] += 1.0  # 2 tokens back
        assert bucket.try_take()[0]
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]


class TestAdmissionGate:
    def test_sheds_past_inflight_plus_queue(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        assert gate.admit(timeout=0.05)
        assert not gate.admit(timeout=0.05)  # full, no queue: shed
        gate.release()
        assert gate.admit(timeout=0.05)

    def test_queued_request_proceeds_on_release(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1)
        assert gate.admit(timeout=0.1)
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(gate.admit(timeout=5.0))
        )
        waiter.start()
        gate.release()
        waiter.join(timeout=5.0)
        assert results == [True]


class TestShardTable:
    def test_snapshot_tracks_updates(self):
        table = ShardTable(2)
        table.set_url(0, "http://h:1")
        table.set_state(0, "healthy")
        snap = table.snapshot()
        assert snap[0] == {"shard": 0, "url": "http://h:1", "state": "healthy"}
        assert snap[1]["url"] is None
        table.set_url(0, None)
        assert table.url(0) is None


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture
def fleet(metrics):
    """A router fronting two real in-process shard servers."""
    managers = [SessionManager(), SessionManager()]
    shards = [ServiceServer(m) for m in managers]
    for s in shards:
        s.start()
    table = ShardTable(2)
    for i, s in enumerate(shards):
        table.set_url(i, s.url)
        table.set_state(i, "healthy")
    router = FleetRouter(table, max_inflight=8, max_queue=8)
    router.start()
    try:
        yield router, shards, ServiceClient(router.url, max_retries=0)
    finally:
        router.stop()
        for s in shards:
            s.stop()


def shard_names(shard: ServiceServer) -> list[str]:
    with urllib.request.urlopen(shard.url + "/status", timeout=5) as resp:
        return json.loads(resp.read())["sessions"]


class TestFleetRouterRouting:
    def test_sessions_land_only_on_their_hash_owner(self, fleet):
        router, shards, client = fleet
        names = [f"route-{i}" for i in range(8)]
        for name in names:
            client.create_session(name, **SMALL_SPEC)
        for name in names:
            owner = router.ring.owner(name)
            assert name in shard_names(shards[owner])
            assert name not in shard_names(shards[1 - owner])

    def test_concurrent_creation_across_shards(self, fleet):
        """Satellite: many clients creating sessions through the proxy
        at once must neither lose nor duplicate any session."""
        router, shards, _ = fleet
        names = [f"conc-{i}" for i in range(12)]
        errors = []

        def create(name):
            try:
                ServiceClient(router.url, max_retries=0).create_session(
                    name, **SMALL_SPEC
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((name, exc))

        threads = [threading.Thread(target=create, args=(n,)) for n in names]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        placed = {0: shard_names(shards[0]), 1: shard_names(shards[1])}
        for name in names:
            owner = router.ring.owner(name)
            assert name in placed[owner]
            assert name not in placed[1 - owner]
        # both shards actually took part
        assert placed[0] and placed[1]

    def test_ask_tell_protocol_through_proxy(self, fleet):
        _, _, client = fleet
        client.create_session("s1", **SMALL_SPEC)
        for ticket, x in client.ask("s1", 3):
            client.tell("s1", ticket, float(np.sum(x**2)))
        status = client.session_status("s1")
        assert status["counters"]["tells"] == 3
        assert status["n_pending"] == 0

    def test_duplicate_tell_taxonomy_travels_through_proxy(self, fleet):
        _, _, client = fleet
        client.create_session("s1", **SMALL_SPEC)
        ticket, _ = client.ask("s1")[0]
        assert client.tell("s1", ticket, 1.0)["status"] == "accepted"
        assert client.tell("s1", ticket, 1.0)["status"] == "duplicate"

    def test_shard_errors_pass_through_with_status(self, fleet):
        _, _, client = fleet
        with pytest.raises(ServiceClientError) as exc:
            client.ask("ghost")
        assert exc.value.status == 404
        client.create_session("s1", **SMALL_SPEC)
        with pytest.raises(ServiceClientError) as exc:
            client.create_session("s1", **SMALL_SPEC)
        assert exc.value.status == 400

    def test_fleet_status_unions_sessions(self, fleet):
        router, _, client = fleet
        client.create_session("a1", **SMALL_SPEC)
        client.create_session("a2", **SMALL_SPEC)
        status = client.server_status()
        assert sorted(status["sessions"]) == ["a1", "a2"]
        assert len(status["shards"]) == 2

    def test_fleet_metrics_merges_shards(self, fleet):
        _, _, client = fleet
        client.create_session("m1", **SMALL_SPEC)
        snap = client.metrics()
        assert "router" in snap and "fleet" in snap
        assert snap["router"]["service.router.forwarded"]["value"] >= 1


class TestFleetRouterResilience:
    def test_down_shard_is_503_with_retry_after(self, fleet):
        router, shards, client = fleet
        client.create_session("s1", **SMALL_SPEC)
        owner = router.ring.owner("s1")
        router.table.set_url(owner, None)  # supervisor marked it dead
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(
                urllib.request.Request(
                    router.url + "/sessions/s1/ask",
                    data=b'{"n": 1}',
                    method="POST",
                    headers={"Content-Type": "application/json"},
                ),
                timeout=5,
            )
        assert exc.value.code == 503
        assert float(exc.value.headers["Retry-After"]) > 0
        # restore and the same session answers again
        router.table.set_url(owner, shards[owner].url)
        assert client.ask("s1", 1)

    def test_rate_limit_sheds_with_429(self, metrics):
        manager = SessionManager()
        shard = ServiceServer(manager)
        shard.start()
        table = ShardTable(1)
        table.set_url(0, shard.url)
        router = FleetRouter(table, rate=1.0, burst=1.0)
        router.start()
        try:
            client = ServiceClient(router.url, max_retries=0)
            client.create_session("s1", **SMALL_SPEC)  # takes the token
            with pytest.raises(ServiceClientError) as exc:
                client.session_status("s1")
            assert exc.value.status == 429
            assert exc.value.retry_after is not None
        finally:
            router.stop()
            shard.stop()

    def test_draining_router_refuses_new_work(self, fleet):
        _, _, client = fleet
        client.create_session("s1", **SMALL_SPEC)
        assert client.shutdown()["status"] == "draining"
        with pytest.raises(ServiceClientError) as exc:
            client.ask("s1")
        assert exc.value.status == 503
        assert client.server_status()["draining"] is True
