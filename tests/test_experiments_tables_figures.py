"""Tests for the table and figure renderers, on a tiny live campaign."""

import numpy as np
import pytest

from repro.experiments import Campaign, Preset
from repro.experiments.figures import (
    figure_1_description,
    figure_2,
    figure_3_to_7,
    figure_8,
    figure_9,
    sparkline,
)
from repro.experiments.tables import (
    table_1,
    table_2,
    table_3,
    table_4,
    table_7,
)

TINY = Preset(
    name="tiny-tabfig",
    budget=30.0,
    sim_time=10.0,
    n_seeds=2,
    batch_sizes=(1, 2),
    time_scale=0.0,
    initial_per_batch=4,
    algorithms=("Random", "TuRBO"),
    benchmarks=("rosenbrock",),
    dim=3,
    gp_options={"n_restarts": 0, "maxiter": 20},
    acq_options={"n_restarts": 2, "raw_samples": 32, "maxiter": 15, "n_mc": 64},
)


@pytest.fixture(scope="module")
def camp(tmp_path_factory):
    root = tmp_path_factory.mktemp("results")
    c = Campaign(TINY, problems=["rosenbrock"], root=root, verbose=False)
    c.ensure()
    return c


@pytest.fixture(scope="module")
def ucamp(tmp_path_factory):
    root = tmp_path_factory.mktemp("uresults")
    c = Campaign(TINY, problems=["uphes"], root=root, verbose=False)
    c.ensure()
    return c


class TestStaticTables:
    def test_table_1_contains_paper_rows(self):
        text = table_1()
        for token in ("Rosenbrock", "Ackley", "Schwefel", "[-500; 500]^12"):
            assert token in text

    def test_table_2_budget_rows(self):
        text = table_2(TINY)
        assert "n_batch" in text
        assert " 8 " in text  # initial sample for q=2: 4*2

    def test_table_3_acquisitions(self):
        text = table_3(TINY)
        assert "EI/UCB (50%)" in text
        assert "qEI" in text


class TestCampaignTables:
    def test_table_4_shape(self, camp):
        text = table_4(camp)
        assert "rosenbrock" in text
        for algo in TINY.algorithms:
            assert algo in text
        # one row per batch size
        assert text.count("\n1 ") + text.count("\n2 ") >= 2

    def test_table_7_blocks(self, ucamp):
        text = table_7(ucamp)
        assert "n_batch = 1" in text and "n_batch = 2" in text
        assert "min" in text and "mean" in text and "sd" in text


class TestFigures:
    def test_sparkline(self):
        assert sparkline([]) == ""
        assert len(sparkline([1, 2, 3])) == 3
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_figure_1_static(self):
        text = figure_1_description()
        assert "upper reservoir" in text and "mine" in text

    def test_figure_2(self, camp):
        data, text = figure_2(camp, "rosenbrock")
        assert set(data) == set(TINY.algorithms)
        assert set(data["Random"]) == {1, 2}
        assert "evaluations" in text

    def test_figure_3_to_7(self, ucamp):
        series, text = figure_3_to_7(ucamp, 2)
        for algo in TINY.algorithms:
            assert "mean" in series[algo]
            # running best of a maximization problem is non-decreasing
            m = np.asarray(series[algo]["mean"])
            assert np.all(np.diff(m) >= -1e-9)
        assert "n_batch = 2" in text

    def test_figure_8(self, ucamp):
        data, text = figure_8(ucamp, n_batch=2)
        p = np.asarray(data["p"])
        assert p.shape == (2, 2)
        np.testing.assert_array_equal(np.diag(p), 1.0)
        assert "p-values" in text

    def test_figure_9(self, ucamp):
        data, text = figure_9(ucamp)
        assert set(data) == {"simulations", "cycles"}
        assert "Figure 9a" in text and "Figure 9b" in text
