"""Finite-difference checks of acquisition gradients."""

import numpy as np
import pytest

from repro.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    ScaledExpectedImprovement,
    UpperConfidenceBound,
)


@pytest.fixture
def gp(fitted_gp):
    return fitted_gp[0]


@pytest.fixture
def best_f(fitted_gp):
    return float(fitted_gp[2].min())


def _fd_check(acq, x, rel=2e-3, abs_=2e-4):
    v0, g = acq.value_and_grad(x)
    assert v0 == pytest.approx(float(acq.value(x[None, :])[0]), rel=1e-6, abs=1e-9)
    h = 1e-6
    for j in range(len(x)):
        xp = x.copy()
        xp[j] += h
        xm = x.copy()
        xm[j] -= h
        fd = (acq.value(xp[None, :])[0] - acq.value(xm[None, :])[0]) / (2 * h)
        assert g[j] == pytest.approx(fd, rel=rel, abs=abs_)


class TestAnalyticGradients:
    @pytest.mark.parametrize("seed", range(4))
    def test_ei(self, gp, best_f, seed):
        x = np.random.default_rng(seed).random(3)
        _fd_check(ExpectedImprovement(gp, best_f), x)

    @pytest.mark.parametrize("seed", range(4))
    def test_pi(self, gp, best_f, seed):
        x = np.random.default_rng(seed).random(3)
        _fd_check(ProbabilityOfImprovement(gp, best_f), x)

    @pytest.mark.parametrize("seed", range(4))
    def test_ucb(self, gp, seed):
        x = np.random.default_rng(seed).random(3)
        _fd_check(UpperConfidenceBound(gp, beta=2.0), x)

    def test_flags(self, gp, best_f):
        assert ExpectedImprovement(gp, best_f).has_analytic_grad
        assert ProbabilityOfImprovement(gp, best_f).has_analytic_grad
        assert UpperConfidenceBound(gp).has_analytic_grad
        assert not ScaledExpectedImprovement(gp, best_f).has_analytic_grad


class TestFallbackGradient:
    def test_scaled_ei_fd_gradient_consistent(self, gp, best_f, rng):
        """The base-class FD gradient should approximate the slope."""
        sei = ScaledExpectedImprovement(gp, best_f)
        x = rng.random(3)
        v, g = sei.value_and_grad(x)
        h = 1e-5
        for j in range(3):
            xp = x.copy()
            xp[j] += h
            fd = (sei.value(xp[None, :])[0] - v) / h
            assert g[j] == pytest.approx(fd, rel=5e-2, abs=1e-3)
