"""Tests for the real executors."""

import numpy as np
import pytest

from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.problems import get_benchmark
from repro.util import ConfigurationError


@pytest.fixture
def problem():
    return get_benchmark("rastrigin", dim=4)


class TestSerial:
    def test_matches_direct(self, problem, rng):
        X = rng.uniform(-5, 5, (7, 4))
        np.testing.assert_array_equal(
            SerialExecutor().evaluate(problem, X), problem(X)
        )

    def test_n_workers(self):
        assert SerialExecutor().n_workers == 1

    def test_context_manager(self, problem, rng):
        X = rng.uniform(-5, 5, (3, 4))
        with SerialExecutor() as ex:
            np.testing.assert_array_equal(ex.evaluate(problem, X), problem(X))


class TestThread:
    def test_matches_direct(self, problem, rng):
        X = rng.uniform(-5, 5, (9, 4))
        with ThreadExecutor(3) as ex:
            np.testing.assert_allclose(ex.evaluate(problem, X), problem(X))

    def test_single_point(self, problem, rng):
        X = rng.uniform(-5, 5, (1, 4))
        with ThreadExecutor(2) as ex:
            assert ex.evaluate(problem, X).shape == (1,)

    def test_reuse_after_evaluate(self, problem, rng):
        ex = ThreadExecutor(2)
        try:
            a = ex.evaluate(problem, rng.uniform(-5, 5, (4, 4)))
            b = ex.evaluate(problem, rng.uniform(-5, 5, (4, 4)))
            assert a.shape == b.shape == (4,)
        finally:
            ex.shutdown()

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(0)

    def test_shutdown_idempotent(self):
        ex = ThreadExecutor(2)
        ex.shutdown()
        ex.shutdown()

    def test_evaluate_after_shutdown_raises(self, problem, rng):
        ex = ThreadExecutor(2)
        ex.evaluate(problem, rng.uniform(-5, 5, (2, 4)))
        ex.shutdown()
        with pytest.raises(ConfigurationError, match="shut down"):
            ex.evaluate(problem, rng.uniform(-5, 5, (2, 4)))

    def test_exiting_context_kills_executor(self, problem, rng):
        with ThreadExecutor(2) as ex:
            ex.evaluate(problem, rng.uniform(-5, 5, (2, 4)))
        with pytest.raises(ConfigurationError, match="shut down"):
            ex.evaluate(problem, rng.uniform(-5, 5, (2, 4)))


class TestProcess:
    def test_matches_direct(self, problem, rng):
        X = rng.uniform(-5, 5, (4, 4))
        with ProcessExecutor(2) as ex:
            np.testing.assert_allclose(ex.evaluate(problem, X), problem(X))
