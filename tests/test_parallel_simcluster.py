"""Tests for the virtual-clock cluster and LPT scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import OverheadModel, SimulatedCluster, VirtualClock, lpt_makespan
from repro.problems import get_benchmark
from repro.util import ConfigurationError


class TestOverheadModel:
    def test_affine(self):
        m = OverheadModel(0.5, 0.1)
        assert m(4) == pytest.approx(0.9)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(-1.0, 0.0)


class TestLPT:
    def test_single_worker_sums(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_workers_takes_max(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 3) == 3.0

    def test_known_schedule(self):
        # LPT on 2 workers: [5,4,3,3,2,2,1] -> loads 10/10
        assert lpt_makespan([5, 4, 3, 3, 2, 2, 1], 2) == 10.0

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            lpt_makespan([1.0, -1.0], 2)

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            lpt_makespan([1.0], 0)

    @settings(max_examples=50, deadline=None)
    @given(
        durations=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
        workers=st.integers(1, 8),
    )
    def test_bounds_property(self, durations, workers):
        """max(job) <= makespan <= sum(jobs); and >= sum/workers."""
        ms = lpt_makespan(durations, workers)
        assert ms >= max(durations) - 1e-9
        assert ms <= sum(durations) + 1e-9
        assert ms >= sum(durations) / workers - 1e-9


class TestSimulatedCluster:
    def test_full_batch_one_wave(self):
        clock = VirtualClock()
        cl = SimulatedCluster(4, clock=clock, overhead=OverheadModel(0.5, 0.05))
        p = get_benchmark("sphere", dim=3, sim_time=10.0)
        cl.evaluate(p, np.zeros((4, 3)))
        assert clock.now == pytest.approx(10.0 + 0.5 + 0.2)

    def test_two_waves(self):
        clock = VirtualClock()
        cl = SimulatedCluster(4, clock=clock, overhead=OverheadModel(0.0, 0.0))
        p = get_benchmark("sphere", dim=3, sim_time=10.0)
        cl.evaluate(p, np.zeros((5, 3)))  # 5 points on 4 workers
        assert clock.now == pytest.approx(20.0)

    def test_zero_sim_time_free(self):
        clock = VirtualClock()
        cl = SimulatedCluster(2, clock=clock)
        p = get_benchmark("sphere", dim=3, sim_time=0.0)
        cl.evaluate(p, np.zeros((2, 3)))
        assert clock.now == 0.0

    def test_counters(self):
        cl = SimulatedCluster(2)
        p = get_benchmark("sphere", dim=3, sim_time=1.0)
        cl.evaluate(p, np.zeros((2, 3)))
        cl.evaluate(p, np.zeros((4, 3)))
        assert cl.n_evaluations == 6
        assert cl.n_batches == 2

    def test_values_correct(self, rng):
        cl = SimulatedCluster(3)
        p = get_benchmark("ackley", dim=4, sim_time=1.0)
        X = rng.uniform(-5, 10, (6, 4))
        np.testing.assert_array_equal(cl.evaluate(p, X), p(X))

    def test_charge_parallel_uses_makespan(self):
        clock = VirtualClock()
        cl = SimulatedCluster(2, clock=clock)
        charged = cl.charge_parallel([3.0, 3.0, 2.0, 2.0])
        assert charged == pytest.approx(5.0)
        assert clock.now == pytest.approx(5.0)

    def test_charge_serial(self):
        clock = VirtualClock()
        cl = SimulatedCluster(2, clock=clock)
        cl.charge(7.5)
        assert clock.now == 7.5

    def test_batch_duration_validation(self):
        cl = SimulatedCluster(2)
        with pytest.raises(ConfigurationError):
            cl.batch_duration(0, 10.0)

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            SimulatedCluster(0)
