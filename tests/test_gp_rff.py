"""Tests for the random-Fourier-features GP backend."""

import time

import numpy as np
import pytest

from repro.core import KBqEGO
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess, RFFGaussianProcess, make_kernel
from repro.problems import get_benchmark
from repro.util import ConfigurationError


@pytest.fixture
def data(rng):
    X = rng.random((60, 3))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2 - X[:, 2]
    return X, y


@pytest.fixture
def rff(data, unit_bounds3):
    X, y = data
    gp = RFFGaussianProcess(dim=3, n_features=512, input_bounds=unit_bounds3,
                            seed=0)
    gp.fit(X, y, n_restarts=1, maxiter=60, seed=0)
    return gp


class TestKernelApproximation:
    @pytest.mark.parametrize("kernel", ["rbf", "matern32", "matern52"])
    def test_feature_inner_product_approximates_kernel(self, kernel, rng):
        """φ(x)ᵀφ(x') must converge to k(x, x') in D."""
        gp = RFFGaussianProcess(dim=2, n_features=8192, kernel=kernel, seed=0)
        gp.log_lengthscale = np.log([0.5, 0.8])
        gp.log_outputscale = 0.0
        exact = make_kernel(kernel, dim=2, ard=True, lengthscale=1.0)
        exact.theta = np.concatenate([[0.0], np.log([0.5, 0.8])])
        X = rng.random((20, 2))
        K_approx = gp._features(X) @ gp._features(X).T
        K_exact = exact(X)
        assert np.max(np.abs(K_approx - K_exact)) < 0.08

    def test_invalid_kernel(self):
        with pytest.raises(ConfigurationError):
            RFFGaussianProcess(dim=2, kernel="periodic")

    def test_frozen_features_deterministic(self, rng):
        a = RFFGaussianProcess(dim=2, n_features=64, seed=3)
        b = RFFGaussianProcess(dim=2, n_features=64, seed=3)
        X = rng.random((5, 2))
        np.testing.assert_array_equal(a._features(X), b._features(X))


class TestRegression:
    def test_fits_smooth_function(self, rff, data):
        X, y = data
        mu, sigma = rff.predict(X)
        assert np.sqrt(np.mean((mu - y) ** 2)) < 0.2
        assert np.all(sigma >= 0)

    def test_agrees_with_exact_gp_off_data(self, data, unit_bounds3, rng):
        X, y = data
        exact = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        exact.fit(X, y, n_restarts=1, maxiter=60, seed=0)
        rff = RFFGaussianProcess(dim=3, n_features=1024,
                                 input_bounds=unit_bounds3, seed=0)
        rff.fit(X, y, n_restarts=1, maxiter=60, seed=0)
        Xq = rng.random((30, 3))
        mu_e = exact.predict(Xq, return_std=False)
        mu_r = rff.predict(Xq, return_std=False)
        spread = np.std(y)
        assert np.mean(np.abs(mu_e - mu_r)) < 0.35 * spread

    def test_uncertainty_grows_off_data(self, rff, data):
        X, _ = data
        _, s_on = rff.predict(X[:1])
        _, s_off = rff.predict(np.array([[0.5, 0.5, 3.0]]))
        assert s_off[0] > s_on[0]

    def test_mean_std_grad_matches_fd(self, rff, rng):
        x = rng.random(3)
        mu, sigma, dmu, dsigma = rff.mean_std_grad(x)
        h = 1e-6
        for j in range(3):
            xp = x.copy()
            xp[j] += h
            mu2, s2 = rff.predict(xp[None, :])
            assert dmu[j] == pytest.approx((mu2[0] - mu) / h, abs=5e-3)
            assert dsigma[j] == pytest.approx((s2[0] - sigma) / h, abs=5e-3)

    def test_fantasize_shrinks_variance(self, rff, rng):
        xf = rng.random((1, 3)) + np.array([[0.0, 0.0, 1.5]])
        _, s_before = rff.predict(xf)
        clone = rff.fantasize(xf)
        _, s_after = clone.predict(xf)
        assert s_after[0] < s_before[0]
        assert rff.n_train == clone.n_train - 1

    def test_joint_posterior_rejected(self, rff, rng):
        with pytest.raises(ConfigurationError):
            rff.joint_posterior(rng.random((2, 3)))

    def test_predict_before_fit(self):
        gp = RFFGaussianProcess(dim=2)
        with pytest.raises(ConfigurationError):
            gp.predict(np.zeros((1, 2)))


class TestScaling:
    def test_fit_time_sublinear_vs_exact_on_large_n(self):
        """The point of the backend: on n = 900 the low-rank fit must
        be clearly cheaper than the exact O(n³) fit."""
        rng = np.random.default_rng(0)
        X = rng.random((900, 3))
        y = np.sin(4 * X[:, 0]) + X[:, 1]
        bounds = np.tile([0.0, 1.0], (3, 1))

        t0 = time.perf_counter()
        RFFGaussianProcess(dim=3, n_features=128, input_bounds=bounds,
                           seed=0).fit(X, y, n_restarts=0, maxiter=15)
        t_rff = time.perf_counter() - t0

        t0 = time.perf_counter()
        GaussianProcess(dim=3, input_bounds=bounds).fit(
            X, y, n_restarts=0, maxiter=15
        )
        t_exact = time.perf_counter() - t0
        assert t_rff < t_exact


class TestBackendIntegration:
    def test_kb_runs_on_rff_backend(self):
        problem = get_benchmark("sphere", dim=3)
        opt = KBqEGO(
            problem, 2, seed=0,
            gp_options={"n_restarts": 0, "maxiter": 20, "backend": "rff",
                        "n_features": 128},
            acq_options={"n_restarts": 2, "raw_samples": 32, "maxiter": 15},
        )
        X0 = latin_hypercube(10, problem.bounds, seed=0)
        opt.initialize(X0, problem(X0))
        start = opt.best_f
        for _ in range(4):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        assert opt.best_f < start
        assert isinstance(opt.gp, RFFGaussianProcess)

    def test_unknown_backend_rejected(self):
        problem = get_benchmark("sphere", dim=3)
        opt = KBqEGO(problem, 2, seed=0, gp_options={"backend": "vae"})
        X0 = latin_hypercube(6, problem.bounds, seed=0)
        opt.initialize(X0, problem(X0))
        with pytest.raises(ConfigurationError):
            opt.propose()
