"""Tests for the groundwater exchange model."""

import numpy as np
import pytest

from repro.uphes import GroundwaterConfig, GroundwaterExchange


@pytest.fixture
def gw():
    return GroundwaterExchange(GroundwaterConfig(z_table=-80.0, conductance=0.05))


class TestFlow:
    def test_inflow_below_table(self, gw):
        assert gw.flow(-95.0) > 0  # pit level below table: seeps in

    def test_outflow_above_table(self, gw):
        assert gw.flow(-70.0) < 0  # pit level above table: leaks out

    def test_equilibrium_at_table(self, gw):
        assert gw.flow(-80.0) == 0.0

    def test_linear_in_difference(self, gw):
        assert gw.flow(-90.0) == pytest.approx(0.05 * 10.0)

    def test_vectorized(self, gw):
        levels = np.array([-95.0, -80.0, -70.0])
        f = gw.flow(levels)
        assert f.shape == (3,)
        assert f[0] > 0 and f[1] == 0 and f[2] < 0

    def test_scenario_table_override(self, gw):
        tables = np.array([-78.0, -82.0])
        f = gw.flow(-80.0, z_table=tables)
        assert f[0] > 0 and f[1] < 0


class TestSampling:
    def test_sample_shape_and_spread(self, gw, rng):
        z = gw.sample_table(rng, 500)
        assert z.shape == (500,)
        assert abs(z.mean() - (-80.0)) < 0.5
        assert 1.0 < z.std() < 3.0

    def test_zero_noise_degenerate(self, rng):
        gw = GroundwaterExchange(GroundwaterConfig(table_noise_std=0.0))
        z = gw.sample_table(rng, 10)
        np.testing.assert_array_equal(z, gw.config.z_table)
