"""Tests for Monte-Carlo qEI (values, gradients, batch properties)."""

import numpy as np
import pytest

from repro.acquisition import ExpectedImprovement, qExpectedImprovement
from repro.util import ConfigurationError


@pytest.fixture
def gp(fitted_gp):
    return fitted_gp[0]


@pytest.fixture
def best_f(fitted_gp):
    # A loose incumbent so qEI is strictly positive in the region
    # we probe (gradients are informative there).
    return float(np.median(fitted_gp[2]))


class TestValue:
    def test_q1_approximates_analytic_ei(self, gp, best_f, rng):
        q1 = qExpectedImprovement(gp, best_f, q=1, n_mc=8192, seed=0)
        ei = ExpectedImprovement(gp, best_f)
        for _ in range(3):
            x = rng.random((1, 3))
            assert q1.value(x) == pytest.approx(
                float(ei.value(x)[0]), rel=0.08, abs=1e-3
            )

    def test_nonnegative(self, gp, best_f, rng):
        q3 = qExpectedImprovement(gp, best_f, q=3, n_mc=128, seed=0)
        for _ in range(5):
            assert q3.value(rng.random((3, 3))) >= 0.0

    def test_monotone_in_batch(self, gp, best_f, rng):
        """Adding a point cannot reduce the joint improvement
        (checked on shared base samples via a fresh estimator pair with
        common seeds is not exact; use a generous sample count)."""
        X2 = rng.random((2, 3))
        x_extra = rng.random((1, 3))
        q2 = qExpectedImprovement(gp, best_f, q=2, n_mc=4096, seed=1)
        q3 = qExpectedImprovement(gp, best_f, q=3, n_mc=4096, seed=1)
        assert q3.value(np.vstack([X2, x_extra])) >= q2.value(X2) - 5e-3

    def test_duplicate_point_adds_nothing(self, gp, best_f, rng):
        x = rng.random((1, 3))
        q2 = qExpectedImprovement(gp, best_f, q=2, n_mc=4096, seed=2)
        q1 = qExpectedImprovement(gp, best_f, q=1, n_mc=4096, seed=2)
        dup = q2.value(np.vstack([x, x]))
        single = q1.value(x)
        assert dup == pytest.approx(single, rel=0.05, abs=2e-3)

    def test_deterministic_given_seed(self, gp, best_f, rng):
        X = rng.random((3, 3))
        a = qExpectedImprovement(gp, best_f, q=3, n_mc=256, seed=5).value(X)
        b = qExpectedImprovement(gp, best_f, q=3, n_mc=256, seed=5).value(X)
        assert a == b

    def test_wrong_batch_size_rejected(self, gp, best_f, rng):
        q2 = qExpectedImprovement(gp, best_f, q=2, n_mc=64, seed=0)
        with pytest.raises(ConfigurationError):
            q2.value(rng.random((3, 3)))

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_q(self, gp, best_f, bad):
        with pytest.raises(ConfigurationError):
            qExpectedImprovement(gp, best_f, q=bad)

    def test_invalid_n_mc(self, gp, best_f):
        with pytest.raises(ConfigurationError):
            qExpectedImprovement(gp, best_f, q=2, n_mc=1)


class TestGradient:
    @pytest.mark.parametrize("q", [2, 3])
    def test_matches_fd(self, gp, best_f, q, rng):
        acq = qExpectedImprovement(gp, best_f, q=q, n_mc=256, seed=0)
        Xq = rng.random((q, 3))
        v, g = acq.value_and_grad(Xq)
        assert v > 0.0  # informative region (loose incumbent)
        h = 1e-7
        for i in range(q):
            for j in range(3):
                Xp = Xq.copy()
                Xp[i, j] += h
                Xm = Xq.copy()
                Xm[i, j] -= h
                fd = (acq.value(Xp) - acq.value(Xm)) / (2 * h)
                assert g[i, j] == pytest.approx(fd, rel=5e-3, abs=5e-5)

    def test_zero_gradient_when_no_improvement(self, gp, rng):
        """With an unbeatable incumbent every sample is inactive."""
        acq = qExpectedImprovement(gp, best_f=-1e9, q=2, n_mc=128, seed=0)
        Xq = rng.random((2, 3))
        v, g = acq.value_and_grad(Xq)
        assert v == 0.0
        np.testing.assert_array_equal(g, 0.0)

    def test_gradient_shape(self, gp, best_f, rng):
        acq = qExpectedImprovement(gp, best_f, q=4, n_mc=64, seed=0)
        _, g = acq.value_and_grad(rng.random((4, 3)))
        assert g.shape == (4, 3)
