"""Tests for campaign sweeps and their disk cache."""

import pytest

from repro.experiments import Campaign, Preset
from repro.util import ConfigurationError

#: A protocol tiny enough to execute inside the test suite.
TINY = Preset(
    name="tiny-test",
    budget=30.0,
    sim_time=10.0,
    n_seeds=2,
    batch_sizes=(1, 2),
    time_scale=0.0,
    initial_per_batch=4,
    algorithms=("Random",),
    benchmarks=("sphere",),
    dim=3,
)


@pytest.fixture
def campaign(tmp_path):
    return Campaign(TINY, problems=["sphere"], root=tmp_path, verbose=False)


class TestSweep:
    def test_cells_enumeration(self, campaign):
        cells = campaign.cells()
        assert len(cells) == 1 * 1 * 2 * 2  # problems*algos*batches*seeds

    def test_ensure_fills_cache(self, campaign):
        assert len(campaign.missing()) == 4
        campaign.ensure()
        assert campaign.missing() == []

    def test_cache_files_written(self, campaign, tmp_path):
        campaign.ensure()
        files = list((tmp_path / "tiny-test").glob("*.json"))
        assert len(files) == 4

    def test_cache_reused_across_instances(self, campaign, tmp_path):
        campaign.ensure()
        fresh = Campaign(TINY, problems=["sphere"], root=tmp_path, verbose=False)
        assert fresh.missing() == []
        rec = fresh.get("sphere", "Random", 1, 0)
        assert rec.best_value == campaign.get("sphere", "Random", 1, 0).best_value

    def test_runs_filtering(self, campaign):
        campaign.ensure()
        assert len(campaign.runs()) == 4
        assert len(campaign.runs(n_batch=2)) == 2
        assert len(campaign.runs(algorithm="Random", n_batch=1)) == 2

    def test_final_values(self, campaign):
        campaign.ensure()
        vals = campaign.final_values("sphere", "Random", 1)
        assert len(vals) == 2
        assert all(isinstance(v, float) for v in vals)

    def test_seeds_give_different_runs(self, campaign):
        campaign.ensure()
        a = campaign.get("sphere", "Random", 1, 0)
        b = campaign.get("sphere", "Random", 1, 1)
        assert a.best_value != b.best_value

    def test_empty_problems_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Campaign(TINY, problems=[], root=tmp_path)

    def test_default_problems_from_preset(self, tmp_path):
        camp = Campaign(TINY, root=tmp_path, verbose=False)
        assert camp.problems == TINY.benchmarks


class TestMetricAggregation:
    def test_mean_and_sd_by_batch(self, campaign):
        from repro.experiments.stats import mean_and_sd_by_batch

        campaign.ensure()
        stats = mean_and_sd_by_batch(campaign, "sphere",
                                     metric="n_simulations")
        assert set(stats) == {"Random"}
        assert set(stats["Random"]) == {1, 2}
        for q in (1, 2):
            mean, sd = stats["Random"][q]
            assert mean > 0
            assert sd >= 0

    def test_metric_best_value_matches_final_values(self, campaign):
        import numpy as np

        from repro.experiments.stats import mean_and_sd_by_batch

        campaign.ensure()
        stats = mean_and_sd_by_batch(campaign, "sphere", metric="best_value")
        vals = campaign.final_values("sphere", "Random", 1)
        assert stats["Random"][1][0] == pytest.approx(float(np.mean(vals)))
