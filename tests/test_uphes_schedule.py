"""Tests for the decision-vector decoder."""

import numpy as np
import pytest

from repro.uphes import UPHESConfig, block_hours, decode_schedule, reserve_block_index
from repro.util import ValidationError

CFG = UPHESConfig()


class TestDecode:
    def test_shapes(self):
        p, r = decode_schedule(np.zeros(12), CFG)
        assert p.shape == (96,) and r.shape == (96,)

    def test_block_expansion(self):
        x = np.zeros(12)
        x[0] = -7.0  # first 3-hour block: steps 0..11
        x[7] = 5.0  # last energy block: steps 84..95
        x[8] = 2.0  # first reserve block: steps 0..23
        p, r = decode_schedule(x, CFG)
        assert np.all(p[:12] == -7.0) and np.all(p[12:84] == 0.0)
        assert np.all(p[84:] == 5.0)
        assert np.all(r[:24] == 2.0) and np.all(r[24:] == 0.0)

    def test_energy_block_is_3_hours(self):
        eh, rh = block_hours(CFG)
        assert eh == 3.0 and rh == 6.0

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValidationError):
            decode_schedule(np.zeros(11), CFG)

    def test_negative_reserve_rejected(self):
        x = np.zeros(12)
        x[9] = -1.0
        with pytest.raises(ValidationError):
            decode_schedule(x, CFG)

    def test_tiny_negative_reserve_tolerated(self):
        """Round-off negatives from optimizers are clipped to zero."""
        x = np.zeros(12)
        x[9] = -1e-12
        _, r = decode_schedule(x, CFG)
        assert np.all(r >= 0.0)


class TestReserveIndex:
    def test_mapping(self):
        idx = reserve_block_index(CFG)
        assert idx.shape == (96,)
        assert idx[0] == 0 and idx[24] == 1 and idx[95] == 3
        assert np.all(np.diff(idx) >= 0)
