"""Tests for the in-process MPI-style communicator."""

import numpy as np
import pytest

from repro.parallel import Communicator, MasterWorkerEvaluator, run_mpi
from repro.problems import get_benchmark
from repro.util import ConfigurationError


class TestPointToPoint:
    def test_send_recv(self):
        def prog(view):
            if view.rank == 0:
                view.send({"a": 7}, dest=1)
                return None
            return view.recv(source=0)

        results = run_mpi(prog, 2)
        assert results[1] == {"a": 7}

    def test_message_ordering_per_pair(self):
        def prog(view):
            if view.rank == 0:
                for i in range(10):
                    view.send(i, dest=1)
                return None
            return [view.recv(source=0) for _ in range(10)]

        results = run_mpi(prog, 2)
        assert results[1] == list(range(10))

    def test_any_source(self):
        def prog(view):
            if view.rank == 0:
                got = {view.recv() for _ in range(2)}
                return got
            view.send(view.rank, dest=0)
            return None

        results = run_mpi(prog, 3)
        assert results[0] == {1, 2}

    def test_tags_isolate_channels(self):
        def prog(view):
            if view.rank == 0:
                view.send("on-5", dest=1, tag=5)
                view.send("on-9", dest=1, tag=9)
                return None
            late = view.recv(source=0, tag=9)
            early = view.recv(source=0, tag=5)
            return (early, late)

        results = run_mpi(prog, 2)
        assert results[1] == ("on-5", "on-9")

    def test_recv_timeout(self):
        comm = Communicator(2)
        with pytest.raises(TimeoutError):
            comm.rank_view(0).recv(source=1, timeout=0.05)

    def test_invalid_dest(self):
        comm = Communicator(2)
        with pytest.raises(ConfigurationError):
            comm.rank_view(0).send("x", dest=5)


class TestCollectives:
    def test_bcast(self):
        results = run_mpi(
            lambda v: v.bcast([1, 2, 3] if v.rank == 0 else None), 4
        )
        assert all(r == [1, 2, 3] for r in results)

    def test_bcast_nonzero_root(self):
        results = run_mpi(
            lambda v: v.bcast("hi" if v.rank == 2 else None, root=2), 3
        )
        assert all(r == "hi" for r in results)

    def test_scatter(self):
        def prog(view):
            chunks = list(range(view.size)) if view.rank == 0 else None
            return view.scatter(chunks)

        assert run_mpi(prog, 4) == [0, 1, 2, 3]

    def test_scatter_wrong_chunks(self):
        def prog(view):
            chunks = [1, 2] if view.rank == 0 else None
            return view.scatter(chunks)

        with pytest.raises(ConfigurationError):
            run_mpi(prog, 3)

    def test_gather(self):
        def prog(view):
            return view.gather(view.rank**2)

        results = run_mpi(prog, 4)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_barrier_synchronizes(self):
        import time

        stamps = {}

        def prog(view):
            if view.rank == 0:
                time.sleep(0.05)
            view.barrier()
            stamps[view.rank] = time.perf_counter()
            return None

        run_mpi(prog, 3)
        assert max(stamps.values()) - min(stamps.values()) < 0.05


class TestRunMpi:
    def test_exception_propagates(self):
        def prog(view):
            if view.rank == 1:
                raise RuntimeError("boom")
            return view.rank

        with pytest.raises(RuntimeError, match="boom"):
            run_mpi(prog, 2)

    def test_size_one(self):
        assert run_mpi(lambda v: v.size, 1) == [1]

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            Communicator(0)


class TestMasterWorker:
    def test_matches_serial(self, rng):
        p = get_benchmark("griewank", dim=3)
        X = rng.uniform(-10, 10, (11, 3))
        with MasterWorkerEvaluator(p, n_workers=3) as ev:
            np.testing.assert_allclose(ev.evaluate(X), p(X))

    def test_order_preserved_with_uneven_work(self, rng):
        import time

        from repro.problems import FunctionProblem

        def slow_on_first(X):
            if X[0, 0] < 0.1:
                time.sleep(0.02)
            return X[:, 0]

        p = FunctionProblem(slow_on_first, np.tile([0.0, 1.0], (2, 1)))
        X = rng.random((8, 2))
        X[0, 0] = 0.05  # the first task is the slowest
        with MasterWorkerEvaluator(p, n_workers=4) as ev:
            np.testing.assert_allclose(ev.evaluate(X), X[:, 0])

    def test_single_row(self, rng):
        p = get_benchmark("sphere", dim=2)
        with MasterWorkerEvaluator(p, n_workers=2) as ev:
            y = ev.evaluate(rng.random(2))
            assert y.shape == (1,)

    def test_repeated_batches(self, rng):
        p = get_benchmark("sphere", dim=2)
        with MasterWorkerEvaluator(p, n_workers=2) as ev:
            for _ in range(3):
                X = rng.random((5, 2))
                np.testing.assert_allclose(ev.evaluate(X), p(X))

    def test_invalid_workers(self):
        p = get_benchmark("sphere", dim=2)
        with pytest.raises(ConfigurationError):
            MasterWorkerEvaluator(p, n_workers=0)
