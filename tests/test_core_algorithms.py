"""Shared behavioural tests across all five PBO algorithms."""

import numpy as np
import pytest

from repro.core import ALGORITHMS, make_optimizer
from repro.doe import latin_hypercube
from repro.problems import get_benchmark

NAMES = ["kb-q-ego", "mic-q-ego", "mc-q-ego", "bsp-ego", "turbo"]


def _initialized(name, q, seed=0, dim=3, n0=10):
    problem = get_benchmark("sphere", dim=dim)
    opt = make_optimizer(name, problem, q, seed=seed,
                         acq_options={"n_restarts": 2, "raw_samples": 32,
                                      "maxiter": 20, "n_mc": 64},
                         gp_options={"n_restarts": 0, "maxiter": 25})
    X0 = latin_hypercube(n0, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("q", [1, 3])
class TestProposeContract:
    def test_batch_shape_and_bounds(self, name, q):
        problem, opt = _initialized(name, q)
        prop = opt.propose()
        assert prop.X.shape == (q, problem.dim)
        assert np.all(prop.X >= problem.lower - 1e-12)
        assert np.all(prop.X <= problem.upper + 1e-12)

    def test_distinct_candidates(self, name, q):
        _, opt = _initialized(name, q)
        X = opt.propose().X
        for i in range(q):
            for j in range(i + 1, q):
                assert not np.allclose(X[i], X[j], atol=1e-10)

    def test_timing_recorded(self, name, q):
        _, opt = _initialized(name, q)
        prop = opt.propose()
        assert prop.fit_time >= 0.0
        assert prop.acq_time >= 0.0
        assert prop.fit_time + prop.acq_time > 0.0

    def test_full_cycle_updates_data(self, name, q):
        problem, opt = _initialized(name, q)
        n0 = opt.X.shape[0]
        prop = opt.propose()
        opt.update(prop.X, problem(prop.X))
        assert opt.X.shape[0] == n0 + q


@pytest.mark.parametrize("name", NAMES)
class TestOptimizationProgress:
    def test_improves_on_sphere(self, name):
        """Five cycles of q=2 must beat the initial design on an easy
        unimodal problem."""
        problem, opt = _initialized(name, q=2, n0=12)
        start = opt.best_f
        for _ in range(5):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        assert opt.best_f < start

    def test_seeded_reproducibility(self, name):
        problem, opt_a = _initialized(name, q=2, seed=7)
        _, opt_b = _initialized(name, q=2, seed=7)
        Xa = opt_a.propose().X
        Xb = opt_b.propose().X
        np.testing.assert_allclose(Xa, Xb)


class TestRegistry:
    def test_paper_aliases_resolve(self):
        for alias in ["KB-q-EGO", "mic-q-EGO", "MC-based q-EGO", "BSP-EGO",
                      "TuRBO", "Random"]:
            problem = get_benchmark("sphere", dim=3)
            opt = make_optimizer(alias, problem, 2, seed=0)
            assert opt.n_batch == 2

    def test_unknown_raises(self):
        from repro.util import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_optimizer("cma-es", get_benchmark("sphere", dim=3), 2)

    def test_registry_names_consistent(self):
        for alias, cls in ALGORITHMS.items():
            assert isinstance(cls.name, str) and cls.name
