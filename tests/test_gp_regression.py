"""End-to-end tests of GaussianProcess regression."""

import numpy as np
import pytest

from repro.gp import GaussianProcess, make_kernel
from repro.util import ConfigurationError


class TestFitPredict:
    def test_interpolates_smooth_data(self, fitted_gp):
        gp, X, y = fitted_gp
        mu, sigma = gp.predict(X)
        assert np.sqrt(np.mean((mu - y) ** 2)) < 0.15
        assert np.all(sigma >= 0)

    def test_fit_improves_mll(self, rng, unit_bounds3):
        X = rng.random((25, 3))
        y = np.cos(5 * X[:, 0]) + X[:, 1]
        gp0 = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp0.fit(X, y, optimize=False)
        before = gp0.log_marginal_likelihood()
        gp1 = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp1.fit(X, y, n_restarts=1, maxiter=60, seed=0)
        assert gp1.log_marginal_likelihood() >= before - 1e-6

    def test_uncertainty_grows_away_from_data(self, fitted_gp):
        gp, X, _ = fitted_gp
        _, s_at = gp.predict(X[:1])
        _, s_far = gp.predict(np.array([[0.5, 0.5, 3.0]]))  # outside cube
        assert s_far[0] > s_at[0]

    def test_predict_mean_only(self, fitted_gp):
        gp, X, _ = fitted_gp
        mu = gp.predict(X[:3], return_std=False)
        assert mu.shape == (3,)

    def test_standardization_invariance(self, rng, unit_bounds3):
        """Predictions should be equivariant under target shift/scale."""
        X = rng.random((20, 3))
        y = np.sin(3 * X[:, 0])
        Xq = rng.random((5, 3))
        gp_a = GaussianProcess(dim=3, input_bounds=unit_bounds3).fit(
            X, y, optimize=False
        )
        gp_b = GaussianProcess(dim=3, input_bounds=unit_bounds3).fit(
            X, 100.0 + 5.0 * y, optimize=False
        )
        mu_a, s_a = gp_a.predict(Xq)
        mu_b, s_b = gp_b.predict(Xq)
        np.testing.assert_allclose(mu_b, 100.0 + 5.0 * mu_a, rtol=1e-8)
        np.testing.assert_allclose(s_b, 5.0 * s_a, rtol=1e-8)

    def test_constant_data_handled(self, unit_bounds3, rng):
        X = rng.random((10, 3))
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.fit(X, np.full(10, 3.0), optimize=False)
        mu, sigma = gp.predict(X[:2])
        assert np.all(np.isfinite(mu)) and np.all(np.isfinite(sigma))
        np.testing.assert_allclose(mu, 3.0, atol=1e-6)

    def test_noise_recovered_roughly(self, rng, unit_bounds3):
        X = rng.random((80, 3))
        f = np.sin(3 * X[:, 0])
        y = f + 0.3 * rng.standard_normal(80)
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.fit(X, y, n_restarts=1, maxiter=80, seed=0)
        # standardized noise var * y_std^2 should be near 0.09
        noise_orig = gp.noise * gp._y_std**2
        assert 0.02 < noise_orig < 0.4


class TestConfiguration:
    def test_needs_dim_or_kernel(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess()

    def test_dim_bounds_mismatch(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess(dim=2, input_bounds=np.tile([0, 1], (3, 1)))

    def test_invalid_mean_mode(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess(dim=2, mean="linear")

    def test_noise_outside_bounds(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess(dim=2, noise=10.0, noise_bounds=(1e-6, 1.0))

    def test_predict_before_fit_raises(self):
        gp = GaussianProcess(dim=2)
        with pytest.raises(ConfigurationError):
            gp.predict(np.zeros((1, 2)))

    def test_custom_kernel_used(self, rng):
        k = make_kernel("rbf", dim=2)
        gp = GaussianProcess(kernel=k, dim=2)
        X = rng.random((10, 2))
        gp.fit(X, X[:, 0], optimize=False)
        assert gp.kernel is k


class TestGradientsPublicAPI:
    def test_mean_std_grad_matches_fd(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        x = rng.random(3)
        mu, sigma, dmu, dsigma = gp.mean_std_grad(x)
        h = 1e-6
        for j in range(3):
            xp = x.copy()
            xp[j] += h
            mu2, s2 = gp.predict(xp[None, :])
            assert dmu[j] == pytest.approx((mu2[0] - mu) / h, abs=2e-3)
            assert dsigma[j] == pytest.approx((s2[0] - sigma) / h, abs=2e-3)

    def test_joint_posterior_consistent_with_predict(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        Xq = rng.random((4, 3))
        post = gp.joint_posterior(Xq)
        mu, sigma = gp.predict(Xq)
        np.testing.assert_allclose(post.mean, mu, rtol=1e-10)
        np.testing.assert_allclose(
            np.sqrt(np.clip(np.diag(post.cov), 0, None)), sigma, atol=1e-8
        )

    def test_joint_posterior_backward_matches_fd(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        Xq = rng.random((3, 3))
        a = rng.standard_normal(3)
        B = rng.standard_normal((3, 3))
        B = 0.5 * (B + B.T)

        def loss(Xq_):
            p = gp.joint_posterior(Xq_)
            return float(a @ p.mean + np.sum(B * p.cov))

        post = gp.joint_posterior(Xq)
        g = gp.joint_posterior_backward(post, a, B)
        f0 = loss(Xq)
        h = 1e-6
        for i in range(3):
            for j in range(3):
                Xp = Xq.copy()
                Xp[i, j] += h
                assert g[i, j] == pytest.approx((loss(Xp) - f0) / h, abs=5e-4)
