"""Tests specific to TuRBO's trust-region dynamics."""

import numpy as np
import pytest

from repro.core import TuRBO
from repro.doe import latin_hypercube
from repro.problems import get_benchmark
from repro.util import ConfigurationError


def _turbo(q=2, seed=0, **kwargs):
    problem = get_benchmark("sphere", dim=3)
    opt = TuRBO(problem, q, seed=seed,
                acq_options={"n_restarts": 2, "raw_samples": 32,
                             "maxiter": 15, "n_mc": 64},
                gp_options={"n_restarts": 0, "maxiter": 20}, **kwargs)
    X0 = latin_hypercube(10, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


class TestTrustRegion:
    def test_initial_length(self):
        _, opt = _turbo()
        assert opt.length == pytest.approx(0.8)

    def test_region_contains_center_and_respects_domain(self):
        problem, opt = _turbo()
        gp, _ = opt._fit_gp(opt.X_tr, opt.y_tr)
        center = opt.X_tr[np.argmin(opt.y_tr)]
        tr = opt.trust_region_bounds(gp, center)
        assert np.all(tr[:, 0] <= center) and np.all(center <= tr[:, 1])
        assert np.all(tr[:, 0] >= problem.lower - 1e-9)
        assert np.all(tr[:, 1] <= problem.upper + 1e-9)

    def test_region_volume_tracks_length(self):
        problem, opt = _turbo()
        gp, _ = opt._fit_gp(opt.X_tr, opt.y_tr)
        center = problem.clip(np.full((1, 3), 2.0))[0]
        opt.length = 0.4
        small = opt.trust_region_bounds(gp, center)
        opt.length = 0.8
        large = opt.trust_region_bounds(gp, center)
        assert np.prod(large[:, 1] - large[:, 0]) > np.prod(
            small[:, 1] - small[:, 0]
        )

    def test_success_expands(self):
        problem, opt = _turbo()
        opt.n_succ = opt.succ_tol - 1
        # a clearly improving batch
        x = np.zeros((2, 3))
        opt.update(x, np.array([-100.0, -99.0]))
        assert opt.length == pytest.approx(1.6)

    def test_failure_shrinks(self):
        _, opt = _turbo()
        L0 = opt.length
        opt.n_fail = opt.fail_tol - 1
        x = np.full((2, 3), 4.0)
        opt.update(x, np.array([1e6, 1e6]))  # no improvement
        assert opt.length == pytest.approx(L0 / 2)

    def test_collapse_triggers_restart(self):
        _, opt = _turbo()
        opt.length = opt.length_min * 1.5
        opt.n_fail = opt.fail_tol - 1
        opt.update(np.full((2, 3), 4.0), np.array([1e6, 1e6]))
        assert opt._restart_pending
        assert opt.length == pytest.approx(opt.length_init)
        assert opt.n_restarts_done == 1
        assert opt.X_tr.shape[0] == 0

    def test_restart_proposals_are_space_filling(self):
        problem, opt = _turbo()
        opt._begin_restart()
        prop = opt.propose()
        assert prop.info.get("restart")
        assert prop.X.shape == (2, 3)
        assert prop.fit_time == 0.0

    def test_restart_completes_after_n_init(self):
        problem, opt = _turbo()
        opt._begin_restart()
        needed = opt._n_init
        for _ in range(int(np.ceil(needed / 2)) + 1):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
            if not opt._restart_pending:
                break
        assert not opt._restart_pending

    def test_fail_tol_scales_with_batch(self):
        problem = get_benchmark("sphere", dim=12)
        small = TuRBO(problem, 1, seed=0)
        big = TuRBO(problem, 8, seed=0)
        assert small.fail_tol > big.fail_tol

    def test_global_data_still_tracked(self):
        problem, opt = _turbo()
        n0 = opt.X.shape[0]
        prop = opt.propose()
        opt.update(prop.X, problem(prop.X))
        assert opt.X.shape[0] == n0 + 2
        assert opt.X_tr.shape[0] == n0 + 2


class TestConfiguration:
    def test_bad_lengths(self):
        problem = get_benchmark("sphere", dim=3)
        with pytest.raises(ConfigurationError):
            TuRBO(problem, 2, length_init=2.0, length_max=1.6)

    def test_bad_acquisition(self):
        problem = get_benchmark("sphere", dim=3)
        with pytest.raises(ConfigurationError):
            TuRBO(problem, 2, acquisition="ei2")

    def test_thompson_variant_proposes(self):
        problem, opt = _turbo(acquisition="thompson")
        prop = opt.propose()
        assert prop.X.shape == (2, 3)
        assert np.all(prop.X >= problem.lower) and np.all(prop.X <= problem.upper)
