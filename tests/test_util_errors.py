"""Tests for the exception hierarchy."""

import pytest

from repro.util import (
    BudgetExhausted,
    ConfigurationError,
    NumericalError,
    ReproError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exc", [ConfigurationError, ValidationError, NumericalError, BudgetExhausted]
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_configuration_error_is_value_error():
    # API users should be able to catch ValueError for bad arguments.
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(ValidationError, ValueError)


def test_numerical_error_is_arithmetic_error():
    assert issubclass(NumericalError, ArithmeticError)


def test_budget_exhausted_is_runtime_error():
    assert issubclass(BudgetExhausted, RuntimeError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise ValidationError("x")
