"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core import make_optimizer, optimize, run_optimization
from repro.experiments import Campaign, Preset
from repro.experiments.report import build_report
from repro.problems import CountingProblem, get_benchmark
from repro.uphes import UPHESSimulator

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 48, "maxiter": 20,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 25},
}


class TestBOAddsValue:
    """The core scientific claim at miniature scale: every surrogate
    algorithm beats random search on an easy problem, evaluation count
    held equal."""

    @pytest.mark.parametrize(
        "algorithm", ["kb-q-ego", "mic-q-ego", "mc-q-ego", "bsp-ego", "turbo"]
    )
    def test_beats_random_on_sphere(self, algorithm):
        problem = get_benchmark("sphere", dim=4, sim_time=10.0)
        kwargs = dict(n_batch=2, budget=120.0, seed=3, time_scale=0.0)
        bo = optimize(problem, algorithm=algorithm, **kwargs, **FAST)
        rnd = optimize(problem, algorithm="random", **kwargs)
        assert bo.n_simulations == rnd.n_simulations
        assert bo.best_value < rnd.best_value

    def test_uphes_bo_beats_its_initial_design(self):
        sim = UPHESSimulator(seed=0, sim_time=10.0)
        res = optimize(sim, algorithm="turbo", n_batch=4, budget=150.0,
                       seed=0, time_scale=0.0, **FAST)
        assert res.best_value > res.initial_best


class TestEvaluationAccounting:
    def test_counting_problem_agrees_with_driver(self):
        inner = get_benchmark("ackley", dim=4, sim_time=10.0)
        problem = CountingProblem(inner)
        opt = make_optimizer("turbo", problem, 2, seed=0, **FAST)
        res = run_optimization(problem, opt, 60.0, time_scale=0.0, seed=0)
        assert problem.n_evals == res.n_initial + res.n_simulations

    def test_batch_size_respected_every_cycle(self):
        problem = get_benchmark("ackley", dim=4, sim_time=10.0)
        opt = make_optimizer("mic-q-ego", problem, 3, seed=0, **FAST)
        res = run_optimization(problem, opt, 50.0, time_scale=0.0, seed=0)
        assert all(r.batch_size == 3 for r in res.history)

    def test_deterministic_replay(self):
        """Identical seeds and configuration give identical runs —
        the reproducibility the virtual clock exists for."""
        problem = get_benchmark("ackley", dim=4, sim_time=10.0)

        def run():
            opt = make_optimizer("turbo", problem, 2, seed=11, **FAST)
            return run_optimization(problem, opt, 60.0, time_scale=0.0,
                                    seed=11)

        a, b = run(), run()
        assert a.best_value == b.best_value
        np.testing.assert_array_equal(a.best_x, b.best_x)
        assert a.n_cycles == b.n_cycles
        assert [r.best_value for r in a.history] == [
            r.best_value for r in b.history
        ]


class TestReportPipeline:
    def test_build_report_smoke_scale(self, tmp_path):
        preset = Preset(
            name="itest",
            budget=25.0,
            sim_time=10.0,
            n_seeds=2,
            batch_sizes=(1, 2),
            time_scale=0.0,
            initial_per_batch=4,
            algorithms=("Random", "TuRBO"),
            benchmarks=("ackley",),
            dim=3,
            gp_options={"n_restarts": 0, "maxiter": 20},
            acq_options={"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                         "n_mc": 64},
        )
        bench = Campaign(preset, root=tmp_path, verbose=False).ensure()
        uphes = Campaign(preset, problems=["uphes"], root=tmp_path,
                         verbose=False).ensure()
        # All renderers must work off these live campaigns.
        from repro.experiments.figures import figure_2, figure_8, figure_9
        from repro.experiments.tables import table_5, table_7

        assert "ackley" in table_5(bench)
        assert "n_batch = 2" in table_7(uphes)
        for fn, camp, args in (
            (figure_2, bench, ("ackley",)),
            (figure_8, uphes, (2,)),
            (figure_9, uphes, ()),
        ):
            data, text = fn(camp, *args)
            assert text

    def test_report_writes_static_artefacts(self, tmp_path):
        artefacts = build_report(
            "smoke", root=tmp_path, include_benchmarks=False,
            include_uphes=False, verbose=False,
        )
        assert set(artefacts) >= {"table1", "table2", "table3", "figure1"}
        report_dir = tmp_path / "smoke" / "report"
        assert (report_dir / "table1.txt").exists()
