"""Finite-difference verification of every kernel gradient path."""

import numpy as np
import pytest

from repro.gp import (
    RBF,
    Matern32,
    Matern52,
    ProductKernel,
    ScaledKernel,
    SumKernel,
)

# Matern12 is excluded from the FD sweeps: its gradient is defined as a
# subgradient at coincident points and FD across the kink is unreliable;
# it has its own targeted test below.
SMOOTH = [
    RBF(lengthscale=[0.4, 0.9], ard_dims=2),
    Matern32(lengthscale=0.6),
    Matern52(lengthscale=[0.3, 1.2], ard_dims=2),
    ScaledKernel(Matern52(lengthscale=0.5), outputscale=2.0),
    SumKernel(RBF(0.5), Matern52(0.8)),
    ProductKernel(RBF(0.7), Matern32(0.9)),
]


@pytest.mark.parametrize("kernel", SMOOTH, ids=lambda k: type(k).__name__)
class TestParamGradients:
    def test_against_fd(self, kernel, rng):
        X = rng.random((6, 2))
        theta0 = kernel.theta.copy()
        K0 = kernel(X)
        grads = kernel.param_gradients(X)
        h = 1e-6
        for j in range(kernel.n_params):
            theta = theta0.copy()
            theta[j] += h
            kernel.theta = theta
            fd = (kernel(X) - K0) / h
            kernel.theta = theta0
            np.testing.assert_allclose(grads[j], fd, rtol=5e-4, atol=1e-7)


@pytest.mark.parametrize("kernel", SMOOTH, ids=lambda k: type(k).__name__)
class TestSpatialGradients:
    def test_grad_x_against_fd(self, kernel, rng):
        X2 = rng.random((5, 2))
        x = rng.random(2) + 0.05
        g = kernel.grad_x(x, X2)
        assert g.shape == (5, 2)
        h = 1e-7
        for j in range(2):
            xp = x.copy()
            xp[j] += h
            fd = (kernel(xp[None, :], X2)[0] - kernel(x[None, :], X2)[0]) / h
            np.testing.assert_allclose(g[:, j], fd, rtol=1e-3, atol=1e-6)

    def test_grad_at_self_is_zero(self, kernel, rng):
        """Stationary kernels (C1 ones) are flat at zero distance."""
        x = rng.random(2)
        g = kernel.grad_x(x, x[None, :])
        np.testing.assert_allclose(g, 0.0, atol=1e-9)


class TestMatern12Gradient:
    def test_grad_x_away_from_kink(self, rng):
        from repro.gp import Matern12

        k = Matern12(lengthscale=0.8)
        X2 = rng.random((4, 2)) + 1.0  # keep distance > 0
        x = rng.random(2)
        g = k.grad_x(x, X2)
        h = 1e-7
        for j in range(2):
            xp = x.copy()
            xp[j] += h
            fd = (k(xp[None, :], X2)[0] - k(x[None, :], X2)[0]) / h
            np.testing.assert_allclose(g[:, j], fd, rtol=1e-3, atol=1e-6)

    def test_subgradient_zero_at_kink(self):
        from repro.gp import Matern12

        k = Matern12(lengthscale=1.0)
        x = np.array([0.5, 0.5])
        g = k.grad_x(x, x[None, :])
        np.testing.assert_array_equal(g, 0.0)
