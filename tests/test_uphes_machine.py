"""Tests for the pump-turbine model (envelopes, hill curves, flows)."""

import numpy as np
import pytest

from repro.uphes import MachineConfig, PumpTurbine
from repro.uphes.config import RHO_G


@pytest.fixture
def machine():
    return PumpTurbine(MachineConfig())


H0 = MachineConfig().head_nominal


class TestEnvelopes:
    def test_nominal_turbine_range(self, machine):
        p_min, p_max = machine.turbine_limits(H0)
        assert p_min == pytest.approx(4.0)
        assert p_max == pytest.approx(8.0)

    def test_turbine_unavailable_below_min_head(self, machine):
        p_min, p_max = machine.turbine_limits(60.0)
        assert np.isinf(p_min) and p_max == 0.0

    def test_forbidden_zone_grows_at_low_head(self, machine):
        p_min_lo, _ = machine.turbine_limits(70.0)
        p_min_hi, _ = machine.turbine_limits(H0)
        assert p_min_lo > p_min_hi

    def test_turbine_max_drops_with_head(self, machine):
        _, p_max_lo = machine.turbine_limits(70.0)
        _, p_max_hi = machine.turbine_limits(H0)
        assert p_max_lo < p_max_hi

    def test_pump_range_nominal(self, machine):
        p_min, p_max = machine.pump_limits(H0)
        assert (p_min, p_max) == (6.0, 8.0)

    def test_pump_unavailable_above_max_lift(self, machine):
        p_min, p_max = machine.pump_limits(120.0)
        assert np.isinf(p_min) and p_max == 0.0

    def test_vectorized_over_heads(self, machine):
        heads = np.array([60.0, 80.0, 100.0])
        p_min, p_max = machine.turbine_limits(heads)
        assert p_min.shape == p_max.shape == (3,)


class TestHillCurves:
    def test_efficiency_within_bounds(self, machine, rng):
        P = rng.uniform(0, 10, 50)
        H = rng.uniform(60, 120, 50)
        cfg = machine.config
        eta_t = machine.turbine_efficiency(P, H)
        eta_p = machine.pump_efficiency(P, H)
        assert np.all(eta_t >= cfg.eta_floor) and np.all(eta_t <= cfg.eta_turb_peak)
        assert np.all(eta_p >= cfg.eta_floor) and np.all(eta_p <= cfg.eta_pump_peak)

    def test_peak_near_bep(self, machine):
        """Efficiency at the best-efficiency point beats off-design."""
        at_bep = machine.turbine_efficiency(6.0, H0)
        off = machine.turbine_efficiency(8.0, H0)
        assert at_bep > off

    def test_head_deviation_costs_efficiency(self, machine):
        nominal = machine.turbine_efficiency(6.0, H0)
        off_head = machine.turbine_efficiency(6.0, H0 - 25.0)
        assert off_head < nominal

    def test_non_constant_over_power(self, machine):
        P = np.linspace(4, 8, 20)
        eta = machine.turbine_efficiency(P, H0)
        assert np.ptp(eta) > 0.01


class TestFlows:
    def test_turbine_energy_balance(self, machine):
        """P = ρ g Q H η must hold by construction."""
        P, H = 6.0, 95.0
        Q = machine.turbine_flow(P, H)
        eta = machine.turbine_efficiency(P, H)
        assert RHO_G * Q * H * eta / 1e6 == pytest.approx(P, rel=1e-12)

    def test_pump_energy_balance(self, machine):
        P, H = 7.0, 85.0
        Q = machine.pump_flow(P, H)
        eta = machine.pump_efficiency(P, H)
        assert P * eta * 1e6 / (RHO_G * H) == pytest.approx(Q, rel=1e-12)

    def test_round_trip_efficiency_below_one(self, machine):
        """Pump water up, turbine it down: must lose energy."""
        H = H0
        p_pump = 7.0
        q_up = machine.pump_flow(p_pump, H)  # m³/s lifted per second
        # Energy to generate from that same flow:
        p_gen = machine.turbine_power_from_flow(q_up, H)
        assert p_gen < p_pump
        assert p_gen / p_pump > 0.5  # but not absurdly lossy

    def test_higher_head_needs_less_flow(self, machine):
        q_lo = machine.turbine_flow(6.0, 75.0)
        q_hi = machine.turbine_flow(6.0, 110.0)
        assert q_hi < q_lo

    def test_power_from_flow_approx_inverse(self, machine):
        P, H = 5.5, 92.0
        Q = machine.turbine_flow(P, H)
        P_back = machine.turbine_power_from_flow(Q, H)
        assert P_back == pytest.approx(P, rel=0.05)
