"""End-to-end ``repro lint`` CLI behavior: exit codes, formats,
baseline lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

CLEAN = "x = 1\n"
DIRTY = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A scan root with one clean and one dirty module; cwd pinned so
    the default baseline path stays inside the sandbox."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "dirty.py").write_text(DIRTY)
    monkeypatch.chdir(tmp_path)
    return pkg


def run_lint(capsys, *argv) -> tuple[int, str]:
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        (tree / "dirty.py").unlink()
        code, out = run_lint(capsys, str(tree))
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_nonzero_with_location(self, tree, capsys):
        code, out = run_lint(capsys, str(tree))
        assert code == 1
        assert "dirty.py:4" in out and "CLK-001" in out

    def test_unreadable_syntax_is_a_finding_not_a_crash(self, tree, capsys):
        (tree / "dirty.py").write_text("def broken(:\n")
        code, out = run_lint(capsys, str(tree))
        assert code == 1
        assert "PARSE-001" in out


class TestBaselineLifecycle:
    def test_update_then_lint_is_clean(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code, out = run_lint(
            capsys, str(tree), "--baseline", str(baseline), "--update-baseline"
        )
        assert code == 0 and "1 grandfathered" in out
        code, out = run_lint(capsys, str(tree), "--baseline", str(baseline))
        assert code == 0
        assert "1 baselined" in out

    def test_new_finding_on_top_of_baseline_fails(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        run_lint(capsys, str(tree), "--baseline", str(baseline),
                 "--update-baseline")
        (tree / "fresh.py").write_text("import time\nnow = time.time()\n")
        code, out = run_lint(capsys, str(tree), "--baseline", str(baseline))
        assert code == 1
        assert "fresh.py:2" in out

    def test_fixed_finding_warns_stale(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        run_lint(capsys, str(tree), "--baseline", str(baseline),
                 "--update-baseline")
        (tree / "dirty.py").write_text(CLEAN)
        code, out = run_lint(capsys, str(tree), "--baseline", str(baseline))
        assert code == 0  # stale entries warn, they don't fail
        assert "stale baseline entry" in out

    def test_no_baseline_flag_ignores_it(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        run_lint(capsys, str(tree), "--baseline", str(baseline),
                 "--update-baseline")
        code, _ = run_lint(capsys, str(tree), "--baseline", str(baseline),
                           "--no-baseline")
        assert code == 1


class TestFormats:
    def test_github_format(self, tree, capsys):
        code, out = run_lint(capsys, str(tree), "--format=github")
        assert code == 1
        assert "::error file=" in out and "title=CLK-001" in out

    def test_json_format(self, tree, capsys):
        code, out = run_lint(capsys, str(tree), "--format=json")
        assert code == 1
        payload = json.loads(out)
        assert payload["n_findings"] == 1
        assert payload["findings"][0]["rule"] == "CLK-001"

    def test_list_rules(self, tree, capsys):
        code, out = run_lint(capsys, "--list-rules")
        assert code == 0
        for rule_id in ("RNG-001", "RNG-002", "CLK-001", "ATM-001",
                        "LOCK-001", "EXC-001", "DET-001"):
            assert rule_id in out

    def test_show_suppressed(self, tree, capsys):
        (tree / "dirty.py").write_text(
            "import time\n"
            "t = time.time()  # repro-lint: disable=CLK-001\n"
        )
        code, out = run_lint(capsys, str(tree), "--show-suppressed")
        assert code == 0
        assert "suppressed:" in out and "dirty.py:2" in out
