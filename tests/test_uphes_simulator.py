"""Tests for the UPHES expected-profit simulator.

These pin the qualitative landscape properties the paper attributes to
its black box: discontinuity at forbidden-zone edges, penalty-dominated
random schedules, positive profit for structured arbitrage schedules,
determinism, and internal physical consistency.
"""

import numpy as np
import pytest

from repro.uphes import UPHESConfig, UPHESSimulator


@pytest.fixture(scope="module")
def sim():
    return UPHESSimulator(seed=0, sim_time=0.0)


#: A sensible day: pump through the night valley, sell the peaks.
GOOD_SCHEDULE = np.array(
    [-7.5, -7.5, 0.0, 0.0, 0.0, 5.5, 7.5, 0.0, 0.0, 0.0, 1.0, 0.5]
)


class TestInterface:
    def test_is_maximization_problem(self, sim):
        assert sim.maximize

    def test_dim_and_bounds(self, sim):
        assert sim.dim == 12
        assert sim.bounds.shape == (12, 2)

    def test_sim_time_default_10s(self):
        assert UPHESSimulator(seed=0).sim_time == 10.0

    def test_batch_matches_rowwise(self, sim, rng):
        X = rng.uniform(sim.lower, sim.upper, (6, 12))
        batch = sim(X)
        rows = np.array([sim(x[None, :])[0] for x in X])
        np.testing.assert_allclose(batch, rows, rtol=1e-12)

    def test_deterministic_same_seed(self, rng):
        X = rng.uniform(-8, 8, (3, 12)).clip(min=None)
        X[:, 8:] = np.abs(X[:, 8:]) % 4
        a = UPHESSimulator(seed=5, sim_time=0.0)(X)
        b = UPHESSimulator(seed=5, sim_time=0.0)(X)
        np.testing.assert_array_equal(a, b)

    def test_different_scenario_seeds_differ(self, rng):
        x = GOOD_SCHEDULE[None, :]
        a = UPHESSimulator(seed=1, sim_time=0.0)(x)[0]
        b = UPHESSimulator(seed=2, sim_time=0.0)(x)[0]
        assert a != b


class TestLandscape:
    def test_idle_is_exactly_zero(self, sim):
        assert sim(np.zeros((1, 12)))[0] == 0.0

    def test_good_schedule_earns(self, sim):
        assert sim(GOOD_SCHEDULE[None, :])[0] > 500.0

    def test_random_schedules_lose(self, sim, rng):
        """Paper §4: random sampling plateaus deep in the red."""
        X = rng.uniform(sim.lower, sim.upper, (2000, 12))
        y = sim(X)
        assert y.max() < 0.0
        assert y.mean() < -3000.0

    def test_forbidden_zone_discontinuity(self, sim):
        """Committing just inside vs just outside the turbine band
        changes the profit discontinuously (trip + penalties)."""
        inside = np.zeros(12)
        inside[5] = 4.5  # valid turbine power at nominal head
        outside = np.zeros(12)
        outside[5] = 3.0  # below p_turb_min: trips
        gap = sim(inside[None])[0] - sim(outside[None])[0]
        assert gap > 300.0

    def test_small_pump_is_infeasible(self, sim):
        """Pumping below 6 MW is a forbidden commitment."""
        x = np.zeros(12)
        x[2] = -3.0
        assert sim(x[None])[0] < -300.0

    def test_unbacked_reserve_penalized(self, sim):
        """Offering reserve with an empty upper basin at night while
        tripped must cost more than the capacity revenue."""
        x = np.zeros(12)
        x[2] = -3.0  # tripped pump block (steps 24..35)
        x[9] = 4.0  # reserve offered over the same window
        with_reserve = sim(x[None])[0]
        x_no_res = x.copy()
        x_no_res[9] = 0.0
        assert with_reserve < sim(x_no_res[None])[0] + 4.0 * 6.0 * 20.0

    def test_backed_reserve_is_profitable(self, sim):
        """Reserve on top of a feasible idle plant with a half-full
        upper basin is nearly free money."""
        x = np.zeros(12)
        x[10] = 1.0
        assert sim(x[None])[0] > 0.0

    def test_buying_at_peak_is_bad(self, sim):
        """Pumping through the evening peak must underperform pumping
        through the night valley."""
        night = np.zeros(12)
        night[0] = -7.0  # 00:00–03:00
        peak = np.zeros(12)
        peak[6] = -7.0  # 18:00–21:00
        assert sim(night[None])[0] > sim(peak[None])[0]

    def test_selling_at_peak_beats_valley(self, sim):
        peak = np.zeros(12)
        peak[6] = 6.0
        valley = np.zeros(12)
        valley[1] = 6.0
        assert sim(peak[None])[0] > sim(valley[None])[0]


class TestPhysicalConsistency:
    def test_trace_matches_profit(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        assert tr.profit == pytest.approx(sim(GOOD_SCHEDULE[None])[0], rel=1e-12)

    def test_trace_shapes(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        n = sim.config.n_steps
        for arr in (tr.hours, tr.committed_power, tr.delivered_power,
                    tr.head, tr.upper_volume, tr.lower_volume,
                    tr.energy_price):
            assert np.asarray(arr).shape == (n,)

    def test_volumes_stay_physical(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        assert np.all(tr.upper_volume >= -1e-6)
        assert np.all(tr.upper_volume <= sim.config.upper.v_max + 1e-6)
        assert np.all(tr.lower_volume >= -1e-6)
        assert np.all(tr.lower_volume <= sim.config.lower.v_max + 1e-6)

    def test_pumping_raises_upper_volume(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        # blocks 0-1 pump: upper volume must rise over the first 6 h
        assert tr.upper_volume[23] > tr.upper_volume[0]

    def test_generation_draws_upper_volume(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        # blocks 5-6 generate (15:00–21:00 = steps 60..83)
        assert tr.upper_volume[83] < tr.upper_volume[60]

    def test_head_moves_with_volumes(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        assert np.ptp(tr.head) > 1.0  # head effects are material

    def test_delivered_matches_committed_when_feasible(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        feasible = np.abs(tr.committed_power) > 0
        np.testing.assert_allclose(
            tr.delivered_power[feasible], tr.committed_power[feasible],
            rtol=1e-9,
        )

    def test_breakdown_keys(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        for key in ("energy_revenue", "reserve_revenue", "terminal_value",
                    "imbalance_cost", "unsafe_cost",
                    "reserve_shortfall_cost", "start_cost"):
            assert key in tr.breakdown

    def test_breakdown_sums_to_profit(self, sim):
        tr = sim.simulate_detailed(GOOD_SCHEDULE)
        b = tr.breakdown
        total = (
            b["energy_revenue"] + b["reserve_revenue"] + b["terminal_value"]
            - b["imbalance_cost"] - b["unsafe_cost"]
            - b["reserve_shortfall_cost"] - b["start_cost"]
        )
        assert total == pytest.approx(tr.profit, rel=1e-9, abs=1e-6)

    def test_groundwater_affects_profit(self):
        from repro.uphes import GroundwaterConfig

        base = UPHESSimulator(seed=0, sim_time=0.0)
        sealed = UPHESSimulator(
            UPHESConfig(groundwater=GroundwaterConfig(conductance=0.0,
                                                      table_noise_std=0.0)),
            seed=0,
            sim_time=0.0,
        )
        x = GOOD_SCHEDULE[None, :]
        assert base(x)[0] != sealed(x)[0]
