"""Tests for the paper's suggested extensions (Discussion §4/§5).

- mic-TuRBO: the multi-infill-criterion trust-region combination the
  paper explicitly proposes as future work;
- subset-of-data GP fitting (``gp_options["max_points"]``), the
  paper's first remedy against the breaking point;
- the generalized criteria set of mic-q-EGO.
"""

import numpy as np
import pytest

from repro.core import MicQEGO, MicTuRBO, make_optimizer
from repro.doe import latin_hypercube
from repro.problems import get_benchmark
from repro.util import ConfigurationError

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


def _init(cls_or_name, q, seed=0, **kwargs):
    problem = get_benchmark("sphere", dim=3)
    if isinstance(cls_or_name, str):
        opt = make_optimizer(cls_or_name, problem, q, seed=seed, **FAST,
                             **kwargs)
    else:
        opt = cls_or_name(problem, q, seed=seed, **FAST, **kwargs)
    X0 = latin_hypercube(10, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


class TestMicTuRBO:
    def test_registered(self):
        _, opt = _init("mic-turbo", 2)
        assert isinstance(opt, MicTuRBO)
        assert opt.name == "mic-TuRBO"

    def test_batch_within_trust_region(self):
        problem, opt = _init(MicTuRBO, 4)
        gp, _ = opt._fit_gp(opt.X_tr, opt.y_tr)
        center = opt.X_tr[np.argmin(opt.y_tr)]
        tr = opt.trust_region_bounds(gp, center)
        prop = opt.propose()
        # the proposal's own fit may differ slightly; use a loose box
        # check against the domain-sized trust region
        assert np.all(prop.X >= problem.lower - 1e-9)
        assert np.all(prop.X <= problem.upper + 1e-9)
        assert prop.X.shape == (4, 3)

    def test_inherits_tr_dynamics(self):
        _, opt = _init(MicTuRBO, 2)
        opt.n_fail = opt.fail_tol - 1
        L0 = opt.length
        opt.update(np.full((2, 3), 4.0), np.array([1e6, 1e6]))
        assert opt.length == pytest.approx(L0 / 2)

    def test_restart_path_reused(self):
        _, opt = _init(MicTuRBO, 2)
        opt._begin_restart()
        prop = opt.propose()
        assert prop.info.get("restart")

    def test_improves_on_sphere(self):
        problem, opt = _init(MicTuRBO, 2)
        start = opt.best_f
        for _ in range(5):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        assert opt.best_f < start


class TestSubsetOfData:
    def test_cap_respected(self):
        _, opt = _init("kb-q-ego", 2)
        opt.gp_options["max_points"] = 8
        opt.update(np.random.default_rng(0).uniform(-5, 10, (20, 3)),
                   np.random.default_rng(0).random(20))
        gp, _ = opt._fit_gp()
        assert gp.n_train == 8

    def test_incumbent_always_kept(self):
        _, opt = _init("kb-q-ego", 2)
        opt.gp_options["max_points"] = 6
        rng = np.random.default_rng(0)
        opt.update(rng.uniform(-5, 10, (30, 3)), rng.random(30) + 1.0)
        X_sub, y_sub = opt._training_subset(opt.X, opt.y)
        assert y_sub.min() == opt.y.min()

    def test_most_recent_kept(self):
        _, opt = _init("kb-q-ego", 2)
        opt.gp_options["max_points"] = 6
        rng = np.random.default_rng(0)
        X_new = rng.uniform(-5, 10, (30, 3))
        opt.update(X_new, rng.random(30) + 1.0)
        X_sub, _ = opt._training_subset(opt.X, opt.y)
        # the very last observation always survives the cap
        assert any(np.allclose(row, opt.X[-1]) for row in X_sub)

    def test_no_cap_by_default(self):
        _, opt = _init("kb-q-ego", 2)
        X_sub, y_sub = opt._training_subset(opt.X, opt.y)
        assert X_sub.shape[0] == opt.X.shape[0]

    def test_capped_run_still_optimizes(self):
        problem, opt = _init("turbo", 2)
        opt.gp_options["max_points"] = 12
        start = opt.best_f
        for _ in range(5):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        assert opt.best_f < start


class TestMicCriteriaSet:
    def test_default_pair(self):
        _, opt = _init(MicQEGO, 2)
        assert opt.criteria_names == ("ei", "ucb")

    def test_three_criteria(self):
        _, opt = _init(MicQEGO, 3, criteria=("ei", "ucb", "pi"))
        gp, _ = opt._fit_gp()
        assert len(opt._criteria(gp, opt.best_f)) == 3
        prop = opt.propose()
        assert prop.X.shape == (3, 3)

    def test_sei_criterion_usable(self):
        _, opt = _init(MicQEGO, 2, criteria=("ei", "sei"))
        prop = opt.propose()
        assert prop.X.shape == (2, 3)

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ConfigurationError):
            _init(MicQEGO, 2, criteria=("ei", "entropy"))

    def test_empty_criteria_rejected(self):
        with pytest.raises(ConfigurationError):
            _init(MicQEGO, 2, criteria=())
