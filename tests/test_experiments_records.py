"""Tests for run records and their serialization."""

import json

import numpy as np
import pytest

from repro.core import RandomSearch, run_optimization
from repro.experiments.records import RunRecord, run_key
from repro.problems import get_benchmark


@pytest.fixture
def record():
    problem = get_benchmark("sphere", dim=3, sim_time=10.0)
    opt = RandomSearch(problem, 2, seed=0)
    result = run_optimization(problem, opt, 40.0, seed=0)
    return RunRecord.from_result(result, seed=0, preset="smoke")


class TestRunRecord:
    def test_fields_copied(self, record):
        assert record.problem == "sphere"
        assert record.algorithm == "Random"
        assert record.n_batch == 2
        assert record.preset == "smoke"
        assert len(record.trajectory) == record.n_cycles
        assert len(record.best_x) == 3

    def test_json_roundtrip(self, record):
        blob = json.dumps(record.to_dict())
        back = RunRecord.from_dict(json.loads(blob))
        assert back == record

    def test_key_stable(self, record):
        assert record.key == run_key("sphere", "Random", 2, 0)

    def test_key_filename_safe(self):
        key = run_key("uphes", "MC-based q-EGO", 16, 3)
        assert " " not in key and "/" not in key
        assert key == "uphes__mc-based_q-ego__q16__s3"

    def test_trajectory_is_plain_floats(self, record):
        assert all(isinstance(v, float) for v in record.trajectory)

    def test_timing_lists_align(self, record):
        assert (
            len(record.fit_times)
            == len(record.acq_times)
            == len(record.acq_charged)
            == len(record.evals_after_cycle)
            == record.n_cycles
        )
