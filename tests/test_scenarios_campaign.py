"""The campaign matrix and the ``repro scenarios`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    ScenarioSpec,
    compact,
    get_scenario,
    matrix_markdown,
    run_cell,
    run_matrix,
    save_bench,
)


class TestCompact:
    def test_reduces_scenario_count_only(self):
        spec = get_scenario("stress")
        small = compact(spec, 4)
        assert small.plants[0].config["n_scenarios"] == 4
        assert small.n_plants == spec.n_plants
        assert small.n_regimes == spec.n_regimes
        assert small.events == spec.events
        assert small.seed == spec.seed

    def test_compact_round_trips(self):
        small = compact(get_scenario("paper"), 4)
        assert ScenarioSpec.from_dict(small.to_dict()) == small


class TestRunCell:
    def test_cell_row_shape(self):
        row = run_cell(
            compact(get_scenario("paper"), 4), "random",
            n_batch=2, n_cycles=2,
        )
        assert row["scenario"] == "paper"
        assert row["algorithm"] == "random"
        assert row["dim"] == 12
        assert row["n_cycles"] == 2
        assert row["n_simulations"] == 2 * 2
        assert "hypervolume" not in row

    def test_mo_cell_reports_hypervolume(self):
        row = run_cell(
            compact(get_scenario("mo"), 4), "mo_bpi",
            n_batch=2, n_cycles=2, n_initial=8,
        )
        assert row["objective"] == "multi"
        assert row["hypervolume"] >= 0.0
        assert row["front_size"] >= 1

    def test_cell_is_deterministic(self):
        spec = compact(get_scenario("seasonal"), 4)
        a = run_cell(spec, "random", n_cycles=2, seed=5)
        b = run_cell(spec, "random", n_cycles=2, seed=5)
        assert a == b


class TestRunMatrix:
    def test_matrix_sweeps_cells(self, tmp_path):
        result = run_matrix(
            scenarios=("paper", "mo"),
            algorithms=("random",),
            n_batch=2,
            n_cycles=1,
            seeds=(0,),
            n_scenarios=4,
        )
        assert [r["scenario"] for r in result["rows"]] == ["paper", "mo"]
        # The multi-objective cell auto-switches to mo_bpi.
        assert result["rows"][1]["algorithm"] == "mo_bpi"
        assert result["preset"]["n_scenarios"] == 4

        table = matrix_markdown(result)
        assert table.splitlines()[0].startswith("| scenario ")
        assert len(table.splitlines()) == 2 + len(result["rows"])

        out = tmp_path / "bench.json"
        save_bench(out, result)
        archived = json.loads(out.read_text())
        assert archived["rows"] == result["rows"]

    def test_spec_instances_accepted(self):
        spec = compact(get_scenario("paper"), 4)
        result = run_matrix(
            scenarios=(spec,), algorithms=("random",), n_cycles=1
        )
        assert result["rows"][0]["scenario"] == "paper"


class TestScenariosCLI:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper", "duo", "seasonal", "stress", "mo"):
            assert name in out
        assert "winter-peak" in out

    def test_show_named(self, capsys):
        assert main(["scenarios", "show", "stress"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == get_scenario("stress").to_dict()

    def test_show_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        spec = compact(get_scenario("paper"), 4)
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["scenarios", "show", str(path)]) == 0
        assert json.loads(capsys.readouterr().out) == spec.to_dict()

    def test_run_journals_scripted_events(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        code = main([
            "scenarios", "run", "stress",
            "--algorithm", "random",
            "--budget", "40", "--n-batch", "2", "--n-initial", "4",
            "--n-scenarios", "4", "--quiet",
            "--journal", str(journal),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario     : stress" in out
        events = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        kinds = [
            e["kind"] for e in events
            if e["event"] == "degradation"
            and e.get("stage") == "scenario_event"
        ]
        assert kinds == ["outage", "drought"]

    def test_run_unknown_scenario_fails(self):
        from repro.util import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown scenario"):
            main(["scenarios", "run", "atlantis"])

    def test_matrix_writes_bench(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scenarios.json"
        code = main([
            "scenarios", "matrix",
            "--scenarios", "paper",
            "--algorithms", "random",
            "--n-batch", "2", "--cycles", "1",
            "--n-scenarios", "4",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "| scenario |" in printed
        assert json.loads(out.read_text())["rows"]
