"""Tests for the HTTP server + client over a real (in-process) socket."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.service import ServiceClient, ServiceClientError, ServiceServer, SessionManager

SMALL_SPEC = {
    "problem": "sphere",
    "dim": 2,
    "algorithm": "random",
    "n_batch": 2,
    "n_initial": 4,
}


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture
def service(metrics):
    manager = SessionManager()
    with ServiceServer(manager) as server:
        yield server, ServiceClient(server.url, max_retries=0)


def evaluate_some(client, session, n=4):
    for ticket, x in client.ask(session, n):
        client.tell(session, ticket, float(np.sum(x**2)))


class TestSessionsEndpoint:
    def test_create_returns_normalized_spec(self, service):
        _, client = service
        out = client.create_session("s1", **SMALL_SPEC)
        assert out["name"] == "s1"
        assert out["spec"]["algorithm"] == "random"
        assert out["spec"]["on_nonfinite"] == "impute"

    def test_duplicate_is_400(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        with pytest.raises(ServiceClientError) as exc:
            client.create_session("s1", **SMALL_SPEC)
        assert exc.value.status == 400

    def test_bad_spec_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceClientError) as exc:
            client.create_session("s1", algorithm="nope")
        assert exc.value.status == 400

    def test_missing_name_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceClientError) as exc:
            client.request("POST", "/sessions", SMALL_SPEC)
        assert exc.value.status == 400

    def test_unknown_route_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceClientError) as exc:
            client.request("GET", "/nope")
        assert exc.value.status == 400


class TestAskTellOverHTTP:
    def test_full_protocol(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        evaluate_some(client, "s1", n=5)
        best = client.best("s1")
        assert best["n_told"] == 5
        assert best["y"] == pytest.approx(
            float(np.sum(np.asarray(best["x"]) ** 2))
        )
        status = client.session_status("s1")
        assert status["initialized"]
        assert status["counters"]["tells"] == 5
        assert status["n_pending"] == 0

    def test_unknown_session_is_404(self, service):
        _, client = service
        for call in (
            lambda: client.ask("ghost"),
            lambda: client.tell("ghost", "t00000000", 1.0),
            lambda: client.best("ghost"),
        ):
            with pytest.raises(ServiceClientError) as exc:
                call()
            assert exc.value.status == 404

    def test_unknown_ticket_is_404(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        client.ask("s1")
        with pytest.raises(ServiceClientError) as exc:
            client.tell("s1", "t99999999", 1.0)
        assert exc.value.status == 404

    def test_best_before_data_is_409(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        with pytest.raises(ServiceClientError) as exc:
            client.best("s1")
        assert exc.value.status == 409

    def test_backpressure_is_429(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC, max_pending=2)
        client.ask("s1", 2)
        with pytest.raises(ServiceClientError) as exc:
            client.ask("s1", 1)
        assert exc.value.status == 429

    def test_nan_tell_over_http_is_guarded(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        evaluate_some(client, "s1", n=4)  # past init
        ticket, _ = client.ask("s1")[0]
        with pytest.warns(RuntimeWarning, match="non-finite"):
            result = client.tell("s1", ticket, float("nan"))
        assert result["status"] == "accepted"
        assert client.session_status("s1")["counters"]["nonfinite"] == 1
        assert np.isfinite(client.best("s1")["y"])

    def test_malformed_tell_is_400(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        for payload in (
            {"ticket": "t00000000"},
            {"y": 1.0},
            {"ticket": "t00000000", "y": "high"},
            {"ticket": "t00000000", "y": True},
        ):
            with pytest.raises(ServiceClientError) as exc:
                client.request("POST", "/sessions/s1/tell", payload)
            assert exc.value.status == 400

    def test_duplicate_tell_status_travels(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        ticket, x = client.ask("s1")[0]
        client.tell("s1", ticket, 1.0)
        assert client.tell("s1", ticket, 1.0)["status"] == "duplicate"


class TestServerLevel:
    def test_server_status_lists_sessions(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        status = client.server_status()
        assert status["sessions"] == ["s1"]
        assert status["draining"] is False

    def test_metrics_exposes_http_instruments(self, service, metrics):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        evaluate_some(client, "s1", n=2)
        snap = client.metrics()
        assert snap["service.http.ask.requests"]["value"] >= 1
        assert snap["service.http.tell.requests"]["value"] >= 2
        assert snap["service.http.ask.latency_s"]["kind"] == "histogram"

    def test_drain_rejects_new_work_with_503(self, service):
        _, client = service
        client.create_session("s1", **SMALL_SPEC)
        assert client.shutdown()["status"] == "draining"
        with pytest.raises(ServiceClientError) as exc:
            client.ask("s1")
        assert exc.value.status == 503
        # /status stays up so operators can watch the drain
        assert client.server_status()["draining"] is True

    def test_shutdown_sets_the_wakeup_flag(self, service):
        server, client = service
        assert server.shutdown_requested is False
        client.shutdown()
        assert server.wait_for_shutdown_request(timeout=5.0)


class TestRestartResume:
    def test_http_restart_resumes_identical_best(self, tmp_path, metrics):
        manager = SessionManager(store_dir=tmp_path, fsync=False)
        with ServiceServer(manager) as server:
            client = ServiceClient(server.url, max_retries=0)
            client.create_session("s1", **SMALL_SPEC)
            evaluate_some(client, "s1", n=6)
            tickets = client.ask("s1", 2)  # leave pending work
            best = client.best("s1")

        manager2 = SessionManager(store_dir=tmp_path, fsync=False)
        with ServiceServer(manager2) as server2:
            client2 = ServiceClient(server2.url, max_retries=0)
            best2 = client2.best("s1")
            assert best2["y"] == best["y"]
            assert best2["n_told"] == best["n_told"]
            status = client2.session_status("s1")
            assert status["n_pending"] == 2
            # a pre-crash ticket is still honoured after restart
            ticket, x = tickets[0]
            assert client2.tell(
                "s1", ticket, float(np.sum(x**2))
            )["status"] == "accepted"
