"""Tests for the Cholesky helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.linalg import (
    cholesky_adjoint,
    cholesky_append,
    cholesky_downdate,
    cholesky_update,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_cholesky,
    solve_lower,
)
from repro.util import NumericalError


def _spd(rng, n):
    A = rng.standard_normal((n, n))
    return A @ A.T + n * np.eye(n)


class TestJitteredCholesky:
    def test_spd_exact(self, rng):
        K = _spd(rng, 6)
        L, jit = jittered_cholesky(K)
        assert jit == 0.0
        np.testing.assert_allclose(L @ L.T, K, rtol=1e-10)

    def test_semidefinite_gets_jitter(self, rng):
        v = rng.standard_normal(5)
        K = np.outer(v, v)  # rank 1: singular
        L, jit = jittered_cholesky(K)
        assert jit > 0.0
        assert np.all(np.isfinite(L))

    def test_indefinite_raises(self):
        K = np.diag([1.0, -5.0])
        with pytest.raises(NumericalError):
            jittered_cholesky(K)

    def test_lower_triangular(self, rng):
        L, _ = jittered_cholesky(_spd(rng, 4))
        assert np.allclose(L, np.tril(L))


class TestSolves:
    def test_solve_lower(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        b = rng.standard_normal(5)
        np.testing.assert_allclose(L @ solve_lower(L, b), b, rtol=1e-10)

    def test_solve_cholesky(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        b = rng.standard_normal(5)
        np.testing.assert_allclose(K @ solve_cholesky(L, b), b, rtol=1e-8)

    def test_log_det(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        assert log_det_from_cholesky(L) == pytest.approx(
            np.linalg.slogdet(K)[1], rel=1e-10
        )


class TestCholeskyAppend:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 8), m=st.integers(1, 4), seed=st.integers(0, 500))
    def test_matches_full_factorization(self, n, m, seed):
        rng = np.random.default_rng(seed)
        K_full = _spd(rng, n + m)
        K = K_full[:n, :n]
        L, _ = jittered_cholesky(K)
        L_ext = cholesky_append(L, K_full[:n, n:], K_full[n:, n:])
        np.testing.assert_allclose(L_ext @ L_ext.T, K_full, rtol=1e-8, atol=1e-8)

    def test_duplicate_point_survives(self, rng):
        """Appending an exact duplicate makes the Schur complement
        singular; the jitter ladder must absorb it."""
        K = _spd(rng, 4)
        L, _ = jittered_cholesky(K)
        # new point identical to point 0 -> cross column = K[:, 0],
        # new diagonal = K[0, 0]
        L_ext = cholesky_append(L, K[:, [0]], K[[0], [0]])
        assert np.all(np.isfinite(L_ext))
        assert L_ext.shape == (5, 5)


def _kernelish(rng, n, jitter=1.0):
    """SPD matrix shaped like a kernel Gram: smooth, near-unit diagonal.

    ``jitter`` scales the diagonal regularization; tiny values produce
    the near-singular matrices that stress the downdate recurrences the
    way duplicated training points stress the real cache.
    """
    X = rng.uniform(0.0, 1.0, size=(n, max(2, n // 2)))
    sq = np.sum((X[:, None, :] - X[None, :, :]) ** 2, axis=-1)
    K = np.exp(-0.5 * sq / 0.3**2)
    K[np.diag_indices_from(K)] += jitter
    return K


class TestCholeskyUpdate:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 10), seed=st.integers(0, 500))
    def test_matches_fresh_factorization(self, n, seed):
        rng = np.random.default_rng(seed)
        K = _spd(rng, n)
        v = rng.standard_normal(n)
        L, _ = jittered_cholesky(K)
        L_up = cholesky_update(L, v)
        np.testing.assert_allclose(
            L_up @ L_up.T, K + np.outer(v, v), rtol=1e-10, atol=1e-10
        )
        assert np.allclose(L_up, np.tril(L_up))

    def test_input_not_mutated(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        L0 = L.copy()
        cholesky_update(L, rng.standard_normal(5))
        np.testing.assert_array_equal(L, L0)

    def test_length_mismatch_raises(self, rng):
        L, _ = jittered_cholesky(_spd(rng, 4))
        with pytest.raises(NumericalError):
            cholesky_update(L, np.ones(3))


class TestCholeskyDowndate:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 12),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    def test_interior_removal_matches_fresh(self, n, seed, data):
        """Removing arbitrary rows matches factoring the submatrix."""
        rng = np.random.default_rng(seed)
        m = data.draw(st.integers(1, n - 1), label="m")
        idx = sorted(
            data.draw(
                st.sets(st.integers(0, n - 1), min_size=m, max_size=m),
                label="idx",
            )
        )
        K = _kernelish(rng, n)
        L, _ = jittered_cholesky(K)
        L_dd = cholesky_downdate(L, idx)
        keep = [i for i in range(n) if i not in idx]
        K_sub = K[np.ix_(keep, keep)]
        np.testing.assert_allclose(
            L_dd @ L_dd.T, K_sub, rtol=1e-8, atol=1e-8
        )

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 10), m=st.integers(1, 4), seed=st.integers(0, 500))
    def test_trailing_truncation_is_bit_exact(self, n, m, seed):
        """Dropping a trailing block returns the factor's own prefix
        verbatim — the property fantasy rollback relies on."""
        rng = np.random.default_rng(seed)
        K = _kernelish(rng, n + m)
        L, _ = jittered_cholesky(K)
        L_dd = cholesky_downdate(L, range(n, n + m))
        assert L_dd.tobytes() == np.ascontiguousarray(L[:n, :n]).tobytes()

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 8),
        m=st.integers(1, 4),
        seed=st.integers(0, 500),
        log_jitter=st.integers(-8, 0),
    )
    def test_append_then_downdate_recovers_original(
        self, n, m, seed, log_jitter
    ):
        """append(m rows) → downdate(those rows) is the identity on the
        factor, bitwise, including near-singular appended blocks."""
        rng = np.random.default_rng(seed)
        K_full = _kernelish(rng, n + m, jitter=10.0**log_jitter)
        L, _ = jittered_cholesky(K_full[:n, :n])
        L_ext = cholesky_append(L, K_full[:n, n:], K_full[n:, n:])
        L_back = cholesky_downdate(L_ext, range(n, n + m))
        assert L_back.tobytes() == L.tobytes()

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 10), seed=st.integers(0, 500))
    def test_near_singular_interior(self, n, seed):
        """A near-duplicate pair leaves the downdate finite and within
        loose tolerance of the fresh factorization."""
        rng = np.random.default_rng(seed)
        K = _kernelish(rng, n, jitter=1e-8)
        L, _ = jittered_cholesky(K)
        k = int(rng.integers(0, n - 1))
        L_dd = cholesky_downdate(L, [k])
        assert np.all(np.isfinite(L_dd))
        keep = [i for i in range(n) if i != k]
        K_sub = K[np.ix_(keep, keep)]
        np.testing.assert_allclose(
            L_dd @ L_dd.T, K_sub, rtol=1e-6, atol=1e-6
        )

    def test_remove_everything(self, rng):
        L, _ = jittered_cholesky(_spd(rng, 3))
        out = cholesky_downdate(L, [0, 1, 2])
        assert out.shape == (0, 0)

    def test_out_of_range_raises(self, rng):
        L, _ = jittered_cholesky(_spd(rng, 4))
        with pytest.raises(NumericalError):
            cholesky_downdate(L, [4])
        with pytest.raises(NumericalError):
            cholesky_downdate(L, [-1])

    def test_duplicate_indices_collapse(self, rng):
        """Indices form a set: repeating one removes it once."""
        L, _ = jittered_cholesky(_spd(rng, 4))
        a = cholesky_downdate(L, [1, 1])
        b = cholesky_downdate(L, [1])
        assert a.tobytes() == b.tobytes()

    def test_result_is_fresh_memory(self, rng):
        """The downdated factor never aliases the input."""
        L, _ = jittered_cholesky(_spd(rng, 5))
        out = cholesky_downdate(L, [4])
        assert not np.shares_memory(out, L)


class TestCholeskyAdjoint:
    @settings(max_examples=20, deadline=None)
    @given(q=st.integers(2, 6), seed=st.integers(0, 500))
    def test_matches_finite_differences(self, q, seed):
        rng = np.random.default_rng(seed)
        S = _spd(rng, q)
        C = np.linalg.cholesky(S)
        C_bar = np.tril(rng.standard_normal((q, q)))

        def loss(Sm):
            return float(np.sum(np.linalg.cholesky(Sm) * C_bar))

        S_bar = cholesky_adjoint(C, C_bar)
        # FD with a symmetric perturbation corresponds to
        # S_bar + S_bar.T off-diagonal, S_bar on the diagonal.
        pred = S_bar + S_bar.T - np.diag(np.diag(S_bar))
        h = 1e-6
        for a in range(q):
            for b in range(a + 1):
                Sp = S.copy()
                Sp[a, b] += h
                if a != b:
                    Sp[b, a] += h
                fd = (loss(Sp) - loss(S)) / h
                assert fd == pytest.approx(pred[a, b], rel=2e-4, abs=1e-6)

    def test_symmetric_output(self, rng):
        S = _spd(rng, 4)
        C = np.linalg.cholesky(S)
        out = cholesky_adjoint(C, np.tril(rng.standard_normal((4, 4))))
        np.testing.assert_allclose(out, out.T)
