"""Tests for the Cholesky helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.linalg import (
    cholesky_adjoint,
    cholesky_append,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_cholesky,
    solve_lower,
)
from repro.util import NumericalError


def _spd(rng, n):
    A = rng.standard_normal((n, n))
    return A @ A.T + n * np.eye(n)


class TestJitteredCholesky:
    def test_spd_exact(self, rng):
        K = _spd(rng, 6)
        L, jit = jittered_cholesky(K)
        assert jit == 0.0
        np.testing.assert_allclose(L @ L.T, K, rtol=1e-10)

    def test_semidefinite_gets_jitter(self, rng):
        v = rng.standard_normal(5)
        K = np.outer(v, v)  # rank 1: singular
        L, jit = jittered_cholesky(K)
        assert jit > 0.0
        assert np.all(np.isfinite(L))

    def test_indefinite_raises(self):
        K = np.diag([1.0, -5.0])
        with pytest.raises(NumericalError):
            jittered_cholesky(K)

    def test_lower_triangular(self, rng):
        L, _ = jittered_cholesky(_spd(rng, 4))
        assert np.allclose(L, np.tril(L))


class TestSolves:
    def test_solve_lower(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        b = rng.standard_normal(5)
        np.testing.assert_allclose(L @ solve_lower(L, b), b, rtol=1e-10)

    def test_solve_cholesky(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        b = rng.standard_normal(5)
        np.testing.assert_allclose(K @ solve_cholesky(L, b), b, rtol=1e-8)

    def test_log_det(self, rng):
        K = _spd(rng, 5)
        L, _ = jittered_cholesky(K)
        assert log_det_from_cholesky(L) == pytest.approx(
            np.linalg.slogdet(K)[1], rel=1e-10
        )


class TestCholeskyAppend:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 8), m=st.integers(1, 4), seed=st.integers(0, 500))
    def test_matches_full_factorization(self, n, m, seed):
        rng = np.random.default_rng(seed)
        K_full = _spd(rng, n + m)
        K = K_full[:n, :n]
        L, _ = jittered_cholesky(K)
        L_ext = cholesky_append(L, K_full[:n, n:], K_full[n:, n:])
        np.testing.assert_allclose(L_ext @ L_ext.T, K_full, rtol=1e-8, atol=1e-8)

    def test_duplicate_point_survives(self, rng):
        """Appending an exact duplicate makes the Schur complement
        singular; the jitter ladder must absorb it."""
        K = _spd(rng, 4)
        L, _ = jittered_cholesky(K)
        # new point identical to point 0 -> cross column = K[:, 0],
        # new diagonal = K[0, 0]
        L_ext = cholesky_append(L, K[:, [0]], K[[0], [0]])
        assert np.all(np.isfinite(L_ext))
        assert L_ext.shape == (5, 5)


class TestCholeskyAdjoint:
    @settings(max_examples=20, deadline=None)
    @given(q=st.integers(2, 6), seed=st.integers(0, 500))
    def test_matches_finite_differences(self, q, seed):
        rng = np.random.default_rng(seed)
        S = _spd(rng, q)
        C = np.linalg.cholesky(S)
        C_bar = np.tril(rng.standard_normal((q, q)))

        def loss(Sm):
            return float(np.sum(np.linalg.cholesky(Sm) * C_bar))

        S_bar = cholesky_adjoint(C, C_bar)
        # FD with a symmetric perturbation corresponds to
        # S_bar + S_bar.T off-diagonal, S_bar on the diagonal.
        pred = S_bar + S_bar.T - np.diag(np.diag(S_bar))
        h = 1e-6
        for a in range(q):
            for b in range(a + 1):
                Sp = S.copy()
                Sp[a, b] += h
                if a != b:
                    Sp[b, a] += h
                fd = (loss(Sp) - loss(S)) / h
                assert fd == pytest.approx(pred[a, b], rel=2e-4, abs=1e-6)

    def test_symmetric_output(self, rng):
        S = _spd(rng, 4)
        C = np.linalg.cholesky(S)
        out = cholesky_adjoint(C, np.tril(rng.standard_normal((4, 4))))
        np.testing.assert_allclose(out, out.T)
