"""Tests for client-side resilience: jitter, breaker, Retry-After,
deadline propagation."""

import io
import json
import random
import urllib.error
import urllib.request
from email.message import Message

import pytest

from repro.service import (
    CircuitBreaker,
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SessionManager,
    full_jitter,
)

SMALL_SPEC = {
    "problem": "sphere",
    "dim": 2,
    "algorithm": "random",
    "n_batch": 2,
    "n_initial": 4,
}


class TestFullJitter:
    def test_bounded_by_doubling_and_cap(self):
        rng = random.Random(7)
        for attempt in range(8):
            for _ in range(50):
                d = full_jitter(0.1, attempt, 1.5, rng)
                assert 0.0 <= d <= min(1.5, 0.1 * 2**attempt)

    def test_retry_after_is_a_floor_not_a_ceiling(self):
        rng = random.Random(7)
        delays = [full_jitter(0.1, 0, 1.0, rng, retry_after=2.0)
                  for _ in range(50)]
        assert all(d >= 2.0 for d in delays)
        assert any(d > 2.0 for d in delays)  # jitter rides on top

    def test_jitter_actually_spreads(self):
        rng = random.Random(7)
        delays = {round(full_jitter(1.0, 3, 10.0, rng), 6)
                  for _ in range(20)}
        assert len(delays) > 10


class TestCircuitBreaker:
    def make(self, **kw):
        self.now = [0.0]
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown_s", 1.0)
        kw.setdefault("rng", random.Random(0))
        return CircuitBreaker(clock=lambda: self.now[0], **kw)

    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()

    def test_closed_allows_and_success_resets(self):
        breaker = self.make()
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_opens_after_threshold_and_fails_fast(self):
        breaker = self.make()
        self.trip(breaker)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_in() > 0.0
        assert breaker.stats["opened"] == 1
        assert breaker.stats["fast_failures"] == 1

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self.make()
        self.trip(breaker)
        self.now[0] += 10.0  # past any jittered cooldown
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else still fails fast
        assert breaker.stats["probes"] == 1

    def test_successful_probe_closes_and_resets_cooldown(self):
        breaker = self.make()
        self.trip(breaker)
        self.now[0] += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker._cooldown == breaker.base_cooldown_s

    def test_failed_probe_reopens_with_doubled_capped_cooldown(self):
        breaker = self.make(max_cooldown_s=3.0)
        for _ in range(4):
            if breaker.state == "closed":
                self.trip(breaker)
            self.now[0] += 100.0
            assert breaker.allow()
            breaker.record_failure()  # probe fails
            assert breaker.state == "open"
        assert breaker._cooldown == 3.0  # 1 -> 2 -> 3 (capped) -> 3


def fake_transport(monkeypatch, script):
    """Replace urlopen with a scripted sequence of answers.

    ``script`` entries: an Exception instance to raise, or a dict to
    return as the JSON body. Returns the list of issued requests.
    """
    calls = []

    class _Resp:
        def __init__(self, payload):
            self.payload = payload
            self.status = 200

        def read(self):
            return json.dumps(self.payload).encode()

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    def fake_urlopen(req, timeout=None):
        calls.append((req, timeout))
        action = script.pop(0)
        if isinstance(action, Exception):
            raise action
        return _Resp(action)

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    return calls


def http_error(code, retry_after=None, payload=None):
    headers = Message()
    if retry_after is not None:
        headers["Retry-After"] = str(retry_after)
    body = json.dumps(payload or {"error": "E", "message": "m"}).encode()
    return urllib.error.HTTPError(
        "http://x", code, "err", headers, io.BytesIO(body)
    )


class TestClientRetries:
    def test_retry_after_floors_the_backoff_sleep(self, monkeypatch):
        fake_transport(monkeypatch, [http_error(429, retry_after=1.5),
                                     {"ok": True}])
        sleeps = []
        client = ServiceClient(
            "http://x", max_retries=2, backoff=0.01,
            retry_backpressure=True, sleep=sleeps.append,
            rng=random.Random(0),
        )
        assert client.request("GET", "/status") == {"ok": True}
        assert len(sleeps) == 1 and sleeps[0] >= 1.5

    def test_429_not_retried_by_default(self, monkeypatch):
        fake_transport(monkeypatch, [http_error(429, retry_after=2.0)])
        client = ServiceClient("http://x", max_retries=3, sleep=lambda s: None)
        with pytest.raises(ServiceClientError) as exc:
            client.request("GET", "/status")
        assert exc.value.status == 429
        assert exc.value.retry_after == 2.0

    def test_503_retried_then_surfaced_with_status(self, monkeypatch):
        fake_transport(monkeypatch, [http_error(503, retry_after=0.1)] * 3)
        client = ServiceClient(
            "http://x", max_retries=2, backoff=0.001,
            sleep=lambda s: None, rng=random.Random(0),
        )
        with pytest.raises(ServiceClientError) as exc:
            client.request("GET", "/status")
        assert exc.value.status == 503
        assert exc.value.retry_after == 0.1

    def test_transport_errors_exhaust_to_status_zero(self, monkeypatch):
        fake_transport(
            monkeypatch, [urllib.error.URLError("refused")] * 2
        )
        client = ServiceClient(
            "http://x", max_retries=1, backoff=0.001, sleep=lambda s: None
        )
        with pytest.raises(ServiceClientError) as exc:
            client.request("GET", "/status")
        assert exc.value.status == 0


class TestClientBreakerIntegration:
    def test_breaker_opens_then_fails_fast_without_transport(
        self, monkeypatch
    ):
        calls = fake_transport(
            monkeypatch, [urllib.error.URLError("down")] * 2
        )
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        client = ServiceClient(
            "http://x", max_retries=0, breaker=breaker, sleep=lambda s: None
        )
        for _ in range(2):
            with pytest.raises(ServiceClientError):
                client.request("GET", "/status")
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as exc:
            client.request("GET", "/status")
        assert exc.value.retry_after > 0
        assert len(calls) == 2  # the fast-fail never touched the wire

    def test_4xx_proves_liveness_and_never_opens(self, monkeypatch):
        fake_transport(monkeypatch, [http_error(404)] * 5)
        breaker = CircuitBreaker(failure_threshold=2)
        client = ServiceClient("http://x", max_retries=0, breaker=breaker)
        for _ in range(5):
            with pytest.raises(ServiceClientError):
                client.request("GET", "/status")
        assert breaker.state == "closed"


class TestDeadlinePropagation:
    def test_deadline_header_travels(self, monkeypatch):
        calls = fake_transport(monkeypatch, [{"ok": True}])
        client = ServiceClient("http://x", deadline_s=5.0, timeout=30.0)
        client.request("GET", "/status")
        req, timeout = calls[0]
        assert float(req.headers["X-repro-deadline"]) > 0
        assert timeout <= 5.0  # socket timeout bounded by the budget

    def test_expired_deadline_is_504_at_the_server(self):
        manager = SessionManager()
        with ServiceServer(manager) as server:
            req = urllib.request.Request(
                server.url + "/status",
                method="GET",
                headers={"X-Repro-Deadline": "1.0"},  # 1970: long expired
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(req, timeout=5)
            assert exc.value.code == 504
            body = json.loads(exc.value.read())
            assert body["error"] == "DeadlineExceededError"
