"""The event scripting engine: masks, overlap semantics, journaling."""

import numpy as np
import pytest

from repro.scenarios import (
    EventSpec,
    FleetSimulator,
    PlantSpec,
    RegimeSpec,
    ScenarioSpec,
    compile_events,
    event_records,
)
from repro.scenarios.events import _window_steps
from repro.uphes.config import UPHESConfig


def _spec(events=(), **kwargs) -> ScenarioSpec:
    defaults = dict(
        plants=(PlantSpec(name="maizeret"),),
        regimes=(RegimeSpec.named("base"),),
        events=tuple(events),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


CFG = UPHESConfig()


class TestWindowSteps:
    def test_aligned_window(self):
        ev = EventSpec(kind="outage", start_hour=8.0, end_hour=12.0)
        steps = _window_steps(ev, CFG.n_steps, CFG.dt_hours)
        hours = np.arange(CFG.n_steps) * CFG.dt_hours
        assert steps.sum() == int(4.0 / CFG.dt_hours)
        assert np.array_equal(steps, (hours >= 8.0) & (hours < 12.0))

    def test_partial_step_rounds_outward(self):
        # A window strictly inside one 15-minute step still masks it.
        ev = EventSpec(kind="outage", start_hour=8.05, end_hour=8.1)
        steps = _window_steps(ev, CFG.n_steps, CFG.dt_hours)
        assert steps.sum() == 1


class TestCompileEvents:
    def test_no_events_is_identity(self):
        avail, inflow = compile_events(_spec(), "maizeret", CFG)
        assert avail is None and inflow is None

    def test_event_for_other_plant_is_identity(self):
        spec = ScenarioSpec(
            plants=(PlantSpec(name="a"), PlantSpec(name="b")),
            regimes=(RegimeSpec.named("base"),),
            events=(EventSpec(kind="outage", plant="a",
                              start_hour=0.0, end_hour=4.0),),
        )
        avail, inflow = compile_events(spec, "b", CFG)
        assert avail is None and inflow is None

    def test_wildcard_hits_every_plant(self):
        spec = _spec([EventSpec(kind="outage", plant="*",
                                start_hour=0.0, end_hour=4.0)])
        avail, _ = compile_events(spec, "maizeret", CFG)
        assert avail is not None and not avail[: int(4 / CFG.dt_hours)].any()

    def test_overlapping_outages_union(self):
        spec = _spec([
            EventSpec(kind="outage", start_hour=6.0, end_hour=12.0),
            EventSpec(kind="outage", start_hour=10.0, end_hour=14.0),
        ])
        avail, _ = compile_events(spec, "maizeret", CFG)
        hours = np.arange(CFG.n_steps) * CFG.dt_hours
        down = (hours >= 6.0) & (hours < 14.0)
        assert np.array_equal(~avail, down)

    def test_overlapping_droughts_compound(self):
        spec = _spec([
            EventSpec(kind="drought", start_hour=0.0, end_hour=24.0,
                      magnitude=0.5),
            EventSpec(kind="drought", start_hour=0.0, end_hour=12.0,
                      magnitude=0.5),
        ])
        _, inflow = compile_events(spec, "maizeret", CFG)
        half = CFG.n_steps // 2
        assert np.allclose(inflow[:half], 0.25)
        assert np.allclose(inflow[half:], 0.5)

    def test_full_drought_stops_exchange(self):
        spec = _spec([EventSpec(kind="drought", magnitude=1.0)])
        _, inflow = compile_events(spec, "maizeret", CFG)
        assert np.allclose(inflow, 0.0)


class TestEventEconomics:
    def test_outage_costs_profit_on_average(self):
        # The fleet wrapper for both, so they share the exact
        # SeedSequence lineage (same market draws, same z tables) and
        # only the availability mask differs. Pointwise monotonicity
        # does not hold — a schedule committing at a loss inside the
        # window can gain a little when the trip penalty undercuts the
        # avoided bad trade — so the claim is on the batch average.
        rng = np.random.default_rng(7)
        base = FleetSimulator(_spec())
        hit = FleetSimulator(
            _spec([EventSpec(kind="outage", start_hour=6.0, end_hour=18.0)])
        )
        X = rng.uniform(
            base.bounds[:, 0], base.bounds[:, 1], size=(32, base.dim)
        )
        gap = base.evaluate(X) - hit.evaluate(X)
        assert gap.mean() > 0.0
        assert -gap.min() < 0.1 * gap.mean()


class TestEventRecords:
    def test_records_match_script(self):
        spec = _spec([
            EventSpec(kind="outage", plant="maizeret",
                      start_hour=8.0, end_hour=12.0),
            EventSpec(kind="drought", magnitude=0.6),
        ])
        records = event_records(spec)
        assert [r["kind"] for r in records] == ["outage", "drought"]
        assert all(r["stage"] == "scenario_event" for r in records)
        assert records[0]["start_hour"] == 8.0
        assert records[1]["magnitude"] == pytest.approx(0.6)
        # Journal-ready: plain JSON scalars only.
        import json

        json.dumps(records)

    def test_no_events_no_records(self):
        assert event_records(_spec()) == []
