"""Tests for the local-penalization batch AP (LP-EGO)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core import LPEGO, make_optimizer
from repro.core.lp_ego import _PenalizedEI
from repro.doe import latin_hypercube
from repro.problems import get_benchmark

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 48, "maxiter": 15},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


def _init(q=3, seed=0, **kwargs):
    problem = get_benchmark("sphere", dim=3)
    opt = LPEGO(problem, q, seed=seed, **FAST, **kwargs)
    X0 = latin_hypercube(12, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


class TestPenalizer:
    def test_shadow_reduces_nearby_acquisition(self):
        """A selected point must suppress the criterion around itself
        more than far away."""
        from repro.acquisition import ExpectedImprovement

        problem, opt = _init()
        gp, _ = opt._fit_gp()
        ei = ExpectedImprovement(gp, opt.best_f + 1.0)  # positive EI zone
        center = np.array([0.0, 0.0, 0.0])
        mu, sigma = gp.predict(center[None, :])
        pen = _PenalizedEI(
            ei, np.asarray([center]),
            [opt.best_f + 1.0 - float(mu[0])],
            [np.sqrt(2.0) * float(sigma[0])],
        )
        pen.lipschitz = 5.0
        near = center + 0.01
        far = center + 4.0
        ratio_near = pen.value(near[None, :])[0] / max(
            ei.value(near[None, :])[0], 1e-300
        )
        ratio_far = pen.value(far[None, :])[0] / max(
            ei.value(far[None, :])[0], 1e-300
        )
        assert ratio_near < ratio_far

    def test_no_centers_is_plain_ei(self):
        from repro.acquisition import ExpectedImprovement

        _, opt = _init()
        gp, _ = opt._fit_gp()
        ei = ExpectedImprovement(gp, opt.best_f)
        pen = _PenalizedEI(ei, [], [], [])
        X = np.random.default_rng(0).uniform(-5, 10, (10, 3))
        np.testing.assert_array_equal(pen.value(X), ei.value(X))

    def test_shadow_matches_formula(self):
        from repro.acquisition import ExpectedImprovement

        _, opt = _init()
        gp, _ = opt._fit_gp()
        ei = ExpectedImprovement(gp, opt.best_f)
        center = np.array([1.0, 1.0, 1.0])
        pen = _PenalizedEI(ei, np.asarray([center]), [0.5], [1.2])
        pen.lipschitz = 2.0
        x = np.array([[2.0, 1.0, 1.0]])
        expected = ei.value(x)[0] * norm.cdf((2.0 * 1.0 + 0.5) / 1.2)
        assert pen.value(x)[0] == pytest.approx(expected, rel=1e-10)


class TestLipschitz:
    def test_estimate_positive(self):
        _, opt = _init()
        gp, _ = opt._fit_gp()
        L = opt._estimate_lipschitz(gp)
        assert L > 0.0

    def test_steeper_function_larger_estimate(self, rng):
        from repro.gp import GaussianProcess

        bounds = np.tile([0.0, 1.0], (2, 1))
        problem = get_benchmark("sphere", dim=2)
        X = rng.random((30, 2))
        flat = GaussianProcess(dim=2, input_bounds=bounds).fit(
            X, 0.01 * X[:, 0], optimize=False
        )
        steep = GaussianProcess(dim=2, input_bounds=bounds).fit(
            X, 50.0 * X[:, 0], optimize=False
        )
        opt = LPEGO(problem, 2, seed=0, **FAST)
        assert opt._estimate_lipschitz(steep) > opt._estimate_lipschitz(flat)


class TestAlgorithm:
    def test_registered(self):
        problem = get_benchmark("sphere", dim=3)
        opt = make_optimizer("lp-ego", problem, 2, seed=0)
        assert isinstance(opt, LPEGO)

    def test_batch_contract(self):
        problem, opt = _init(q=4)
        prop = opt.propose()
        assert prop.X.shape == (4, 3)
        assert np.all(problem.contains(prop.X))
        # all distinct
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(prop.X[i], prop.X[j])

    def test_improves_on_sphere(self):
        problem, opt = _init(q=2)
        start = opt.best_f
        for _ in range(5):
            prop = opt.propose()
            opt.update(prop.X, problem(prop.X))
        assert opt.best_f < start

    def test_no_fantasy_updates(self):
        """LP never augments the model — its data stays untouched
        during propose()."""
        problem, opt = _init(q=4)
        prop = opt.propose()
        assert opt.gp.n_train == opt.X.shape[0]
