"""Tests for the Kriging-Believer fantasy updates and partial_fit."""

import numpy as np
import pytest

from repro.gp import GaussianProcess
from repro.gp.linalg import jittered_cholesky


class TestFantasize:
    def test_default_fantasy_is_posterior_mean(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        xf = rng.random((1, 3))
        mu_before = gp.predict(xf, return_std=False)
        g2 = gp.fantasize(xf)
        # The fantasized model believes its own prediction.
        mu_after = g2.predict(xf, return_std=False)
        assert mu_after[0] == pytest.approx(mu_before[0], abs=1e-6)

    def test_variance_shrinks_at_fantasy(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        xf = np.array([[0.42, 0.77, 0.13]])
        _, s_before = gp.predict(xf)
        _, s_after = gp.fantasize(xf).predict(xf)
        assert s_after[0] < s_before[0]

    def test_original_untouched(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        n = gp.n_train
        gp.fantasize(rng.random((2, 3)))
        assert gp.n_train == n

    def test_inplace_variant(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        n = gp.n_train
        gp2 = GaussianProcess(dim=3, input_bounds=gp.input_bounds)
        gp2.__dict__.update(gp.__dict__)
        gp2.fantasize_(rng.random((3, 3)))
        assert gp2.n_train == n + 3

    def test_matches_exact_refactorization(self, fitted_gp, rng):
        """Extended Cholesky must equal the from-scratch factor of the
        augmented kernel matrix (same hyperparameters)."""
        gp, _, _ = fitted_gp
        xf = rng.random((2, 3))
        g2 = gp.fantasize(xf)
        K = gp.kernel(g2.X_)
        K[np.diag_indices_from(K)] += gp.noise
        L_exact, _ = jittered_cholesky(K)
        np.testing.assert_allclose(g2.L_ @ g2.L_.T, L_exact @ L_exact.T,
                                   rtol=1e-8, atol=1e-10)

    def test_explicit_fantasy_values(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        xf = rng.random((1, 3))
        g2 = gp.fantasize(xf, y_new=[5.0])
        assert g2.y_[-1] == 5.0

    def test_chained_fantasies(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        model = gp
        for _ in range(4):
            model = model.fantasize(rng.random((1, 3)))
        assert model.n_train == gp.n_train + 4
        mu, s = model.predict(rng.random((3, 3)))
        assert np.all(np.isfinite(mu)) and np.all(np.isfinite(s))

    def test_duplicate_fantasy_survives(self, fitted_gp):
        gp, X, _ = fitted_gp
        g2 = gp.fantasize(X[:1])  # duplicates a training point
        assert np.all(np.isfinite(g2.L_))

    def test_fantasize_inplace_returns_self(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        n = gp.n_train
        out = gp.fantasize_(rng.random((2, 3)))
        assert out is gp  # genuinely in-place, chainable
        assert gp.n_train == n + 2
        mu, s = gp.predict(rng.random((4, 3)))
        assert np.all(np.isfinite(mu)) and np.all(np.isfinite(s))

    def test_fantasize_never_refactorizes_fully(self, fitted_gp, rng,
                                                monkeypatch):
        """The update must extend L_, not rebuild it: the only Cholesky
        taken during a fantasy of m points is the m×m Schur block —
        never the full (n+m)×(n+m) kernel matrix."""
        import repro.gp.linalg as linalg

        gp, _, _ = fitted_gp
        n, m = gp.n_train, 3
        sizes: list[int] = []
        real = linalg.jittered_cholesky

        def spy(K, *args, **kwargs):
            sizes.append(np.asarray(K).shape[0])
            return real(K, *args, **kwargs)

        monkeypatch.setattr(linalg, "jittered_cholesky", spy)
        gp.fantasize(rng.random((m, 3)))
        assert sizes == [m]  # one Schur factorization, nothing bigger

    def test_fantasize_clone_shares_no_fitted_arrays(self, fitted_gp, rng):
        """fantasize() must not mutate the base model's fitted state
        even though the clone is shallow — fantasize_ rebinds arrays."""
        gp, _, _ = fitted_gp
        X_id, L_id = id(gp.X_), id(gp.L_)
        X_copy, L_copy = gp.X_.copy(), gp.L_.copy()
        g2 = gp.fantasize(rng.random((2, 3)))
        assert g2 is not gp
        assert id(gp.X_) == X_id and id(gp.L_) == L_id
        np.testing.assert_array_equal(gp.X_, X_copy)
        np.testing.assert_array_equal(gp.L_, L_copy)
        assert g2.X_.shape[0] == gp.X_.shape[0] + 2

    def test_fantasize_inplace_matches_clone(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        xf = rng.random((2, 3))
        clone = gp.fantasize(xf)
        gp.fantasize_(xf)
        xq = rng.random((5, 3))
        np.testing.assert_allclose(
            gp.predict(xq)[0], clone.predict(xq)[0], rtol=1e-12
        )
        np.testing.assert_array_equal(gp.L_, clone.L_)


class TestDefantasize:
    def test_round_trip_is_bit_exact(self, fitted_gp, rng):
        """fantasize_ → defantasize_ restores L_ and alpha_ verbatim
        (trailing truncation returns the factor's own prefix)."""
        gp, _, _ = fitted_gp
        L_before = gp.L_.copy()
        alpha_before = gp.alpha_.copy()
        n = gp.n_train
        gp.fantasize_(rng.random((3, 3)))
        assert gp.n_fantasy == 3
        gp.defantasize_()
        assert gp.n_train == n
        assert gp.n_fantasy == 0
        assert gp.L_.tobytes() == L_before.tobytes()
        assert gp.alpha_.tobytes() == alpha_before.tobytes()

    def test_partial_rollback(self, fitted_gp, rng):
        """Removing only the newest fantasies keeps the older ones —
        the ticket-expiry requeue case (one ask dies, others live)."""
        gp, _, _ = fitted_gp
        n = gp.n_train
        gp.fantasize_(rng.random((2, 3)))
        mid_L = gp.L_.copy()
        gp.fantasize_(rng.random((3, 3)))
        gp.defantasize_(3)
        assert gp.n_train == n + 2
        assert gp.n_fantasy == 2
        assert gp.L_.tobytes() == mid_L.tobytes()

    def test_rejects_more_than_fantasized(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        gp.fantasize_(rng.random((2, 3)))
        with pytest.raises(Exception):
            gp.defantasize_(3)

    def test_zero_is_noop(self, fitted_gp):
        gp, _, _ = fitted_gp
        L_id = id(gp.L_)
        gp.defantasize_(0)
        assert id(gp.L_) == L_id

    def test_predictions_restored(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        xq = rng.random((5, 3))
        mu_before, s_before = gp.predict(xq)
        gp.fantasize_(rng.random((4, 3)))
        gp.defantasize_()
        mu_after, s_after = gp.predict(xq)
        np.testing.assert_array_equal(mu_before, mu_after)
        np.testing.assert_array_equal(s_before, s_after)


class TestFactorOwnership:
    """Copy-on-write guard: fantasized clones never corrupt the parent.

    The parent's ``L_`` may be owned by a shared :class:`FactorCache`;
    a clone that mutated it in place would silently poison every later
    cache hit. ``fantasize()`` therefore drops the cache reference on
    the clone and ``fantasize_``/``defantasize_`` always rebind freshly
    allocated factors.
    """

    def test_clone_does_not_share_cache(self, fitted_gp, rng):
        from repro.gp import FactorCache

        gp, _, _ = fitted_gp
        gp.factor_cache = FactorCache()
        clone = gp.fantasize(rng.random((2, 3)))
        assert clone.factor_cache is None

    def test_mutating_clone_preserves_parent_factor(self, unit_bounds3, rng):
        """End-to-end: parent's cached factor survives arbitrary clone
        fantasize/defantasize churn, bit for bit."""
        from repro.gp import FactorCache

        X = rng.random((15, 3))
        y = np.sin(3.0 * X[:, 0]) + X[:, 1]
        cache = FactorCache()
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.factor_cache = cache
        gp.fit(X, y, optimize=False)
        parent_bytes = gp.L_.tobytes()
        cache_bytes = cache._L.tobytes()

        clone = gp.fantasize(rng.random((3, 3)))
        clone.fantasize_(rng.random((2, 3)))
        clone.defantasize_(4)
        clone.fantasize_(rng.random((1, 3)))

        assert gp.L_.tobytes() == parent_bytes
        assert cache._L.tobytes() == cache_bytes
        # and the cache still serves the parent's next refit as a hit
        gp.fit(X, y, optimize=False)
        assert gp.L_.tobytes() == parent_bytes

    def test_cache_owned_factor_not_mutated_by_fantasize_(self,
                                                          unit_bounds3, rng):
        """Even the in-place fantasize_ on a cache-backed model must
        rebind, never write through, the cached factor."""
        from repro.gp import FactorCache

        X = rng.random((12, 3))
        y = X[:, 0] ** 2
        cache = FactorCache()
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.factor_cache = cache
        gp.fit(X, y, optimize=False)
        cached_L = cache._L
        cached_bytes = cached_L.tobytes()
        gp.fantasize_(rng.random((2, 3)))
        assert gp.L_ is not cached_L
        assert cached_L.tobytes() == cached_bytes
        gp.defantasize_()
        assert cached_L.tobytes() == cached_bytes


class TestPartialFit:
    def test_appends_data(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        n = gp.n_train
        gp.partial_fit(rng.random((3, 3)), rng.standard_normal(3))
        assert gp.n_train == n + 3

    def test_no_reopt_keeps_hyperparameters(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        theta = gp.kernel.theta.copy()
        gp.partial_fit(rng.random((2, 3)), rng.standard_normal(2),
                       reoptimize=False)
        np.testing.assert_array_equal(gp.kernel.theta, theta)

    def test_reopt_changes_hyperparameters(self, rng, unit_bounds3):
        X = rng.random((20, 3))
        y = np.sin(5 * X[:, 0])
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp.fit(X, y, optimize=False)
        theta = gp.kernel.theta.copy()
        gp.partial_fit(rng.random((5, 3)), rng.standard_normal(5),
                       reoptimize=True, maxiter=20)
        assert not np.allclose(gp.kernel.theta, theta)

    def test_restandardizes(self, fitted_gp, rng):
        gp, _, _ = fitted_gp
        y_mean_before = gp._y_mean
        gp.partial_fit(rng.random((2, 3)), np.array([100.0, 120.0]))
        assert gp._y_mean != y_mean_before
