"""Tests for the single-run CLI."""

import json
import re
import subprocess
import sys

import pytest

from repro.cli import (
    build_fleet_parser,
    build_parser,
    build_serve_parser,
    build_worker_parser,
    main,
    package_version,
)


class TestVersion:
    def test_version_flag_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"
        assert re.fullmatch(r"repro \d+\.\d+.*", out.strip())

    def test_package_version_matches_module(self):
        import repro

        assert package_version() == repro.__version__

    def test_python_dash_m_version(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert proc.stdout.strip() == f"repro {package_version()}"


class TestServiceParsers:
    def test_serve_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8751
        assert args.store is None
        assert args.max_sessions == 64
        assert args.no_fsync is False

    def test_worker_requires_url_and_session(self):
        with pytest.raises(SystemExit):
            build_worker_parser().parse_args(["--session", "s"])
        with pytest.raises(SystemExit):
            build_worker_parser().parse_args(["--url", "http://x"])

    def test_worker_defaults(self):
        args = build_worker_parser().parse_args(
            ["--url", "http://127.0.0.1:8751", "--session", "s"]
        )
        assert args.max_evals is None
        assert args.deadline is None
        assert args.hold == 0.0
        assert args.backoff == 0.2

    def test_serve_announce_and_backup_flags(self):
        args = build_serve_parser().parse_args(
            ["--announce", "a.json", "--backup-checkpoints"]
        )
        assert args.announce == "a.json"
        assert args.backup_checkpoints is True

    def test_fleet_requires_store(self):
        with pytest.raises(SystemExit):
            build_fleet_parser().parse_args(["--shards", "2"])

    def test_fleet_defaults(self):
        args = build_fleet_parser().parse_args(["--store", "fleet/"])
        assert args.shards == 2
        assert args.port == 8750
        assert args.heartbeat == 1.0
        assert args.max_missed == 3
        assert args.rate is None


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.problem == "ackley"
        assert args.algorithm == "turbo"
        assert args.n_batch == 4

    def test_uphes_choice(self):
        args = build_parser().parse_args(["--problem", "uphes"])
        assert args.problem == "uphes"

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--problem", "branin"])


class TestMain:
    def test_random_run_prints_summary(self, capsys):
        code = main([
            "--problem", "sphere", "--algorithm", "random",
            "--n-batch", "2", "--budget", "50", "--dim", "3",
            "--n-initial", "6", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final best" in out
        assert "cycles/sims  : 5 / 10" in out

    def test_cycle_table_printed(self, capsys):
        main([
            "--problem", "sphere", "--algorithm", "random",
            "--n-batch", "2", "--budget", "30", "--dim", "3",
            "--n-initial", "4",
        ])
        out = capsys.readouterr().out
        assert "cycle  t_start" in out

    def test_json_record_written(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        main([
            "--problem", "sphere", "--algorithm", "random",
            "--n-batch", "2", "--budget", "30", "--dim", "3",
            "--n-initial", "4", "--quiet", "--json", str(path),
        ])
        data = json.loads(path.read_text())
        assert data["problem"] == "sphere"
        assert data["algorithm"] == "Random"
        assert data["preset"] == "cli"

    def test_uphes_run(self, capsys):
        code = main([
            "--problem", "uphes", "--algorithm", "random",
            "--n-batch", "4", "--budget", "40", "--n-initial", "8",
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "profit" in out

    def test_bo_algorithm_via_cli(self, capsys):
        code = main([
            "--problem", "sphere", "--algorithm", "turbo",
            "--n-batch", "2", "--budget", "40", "--dim", "3",
            "--n-initial", "8", "--time-scale", "0", "--quiet",
        ])
        assert code == 0

    def test_unknown_algorithm_raises(self):
        from repro.util import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["--problem", "sphere", "--algorithm", "annealing"])


class TestResilienceFlags:
    ARGS = [
        "--problem", "sphere", "--algorithm", "random",
        "--n-batch", "2", "--budget", "50", "--dim", "3",
        "--n-initial", "6", "--quiet",
    ]

    def test_journal_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.resilience import read_events

        path = tmp_path / "run.jsonl"
        assert main([*self.ARGS, "--journal", str(path)]) == 0
        events = read_events(path)
        assert events[0]["event"] == "run_started"
        assert events[-1]["event"] == "run_completed"

    def test_resume_subcommand_replays_completed_run(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main([*self.ARGS, "--journal", str(path)])
        first = capsys.readouterr().out
        assert main(["resume", str(path), "--quiet"]) == 0
        second = capsys.readouterr().out
        line = next(l for l in first.splitlines() if "final best" in l)
        assert line in second

    def test_resume_missing_journal_raises(self, tmp_path):
        from repro.util import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["resume", str(tmp_path / "absent.jsonl")])

    def test_fault_flags_run_to_completion(self, capsys):
        code = main([*self.ARGS, "--nan-rate", "0.2", "--max-attempts", "2"])
        assert code == 0
        assert "final best" in capsys.readouterr().out


class TestObservabilityFlags:
    ARGS = [
        "--problem", "sphere", "--algorithm", "random",
        "--n-batch", "2", "--budget", "50", "--dim", "3",
        "--n-initial", "6",
    ]

    @pytest.fixture(autouse=True)
    def _restore_globals(self):
        from repro.obs import get_metrics, get_tracer, set_metrics, set_tracer

        tracer, metrics = get_tracer(), get_metrics()
        yield
        set_tracer(tracer)
        set_metrics(metrics)

    def test_trace_flag_writes_jsonl_and_prints_table(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = tmp_path / "trace.jsonl"
        assert main([*self.ARGS, "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "Per-phase wall time" in out  # the summary table
        records = read_trace(path)
        assert {"cycle", "propose", "evaluate"} <= {r["span"] for r in records}
        # Dual timestamps: driver-level spans carry the virtual clock.
        ev = next(r for r in records if r["span"] == "evaluate")
        assert ev["virtual_s"] > 0.0

    def test_metrics_flag_writes_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main([*self.ARGS, "--quiet", "--metrics-out", str(path)]) == 0
        snap = json.loads(path.read_text())
        assert snap["cycles_total"]["kind"] == "counter"
        assert snap["cycles_total"]["value"] == 5.0
        assert "cluster.busy_virtual_s" in snap

    def test_quiet_suppresses_phase_table(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main([*self.ARGS, "--quiet", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "Per-phase wall time" not in out

    def test_trace_with_journal_correlates(self, tmp_path):
        from repro.obs import correlate_with_journal, read_trace
        from repro.resilience import read_events

        trace_path = tmp_path / "trace.jsonl"
        journal_path = tmp_path / "run.jsonl"
        assert main([*self.ARGS, "--quiet", "--trace", str(trace_path),
                     "--journal", str(journal_path)]) == 0
        joined = correlate_with_journal(
            read_trace(trace_path), read_events(journal_path)
        )
        assert set(joined) == {1, 2, 3, 4, 5}
        for cycle in joined.values():
            assert cycle["journal"]["event"] == "cycle"
            assert cycle["phases"]["evaluate"] >= 0.0


class TestPortfolioSubcommand:
    def test_parser_defaults(self):
        from repro.cli import build_portfolio_parser

        args = build_portfolio_parser().parse_args([])
        assert args.problem == "ackley"
        assert args.workers == 4
        assert args.fantasy == "kb"
        assert args.rule == "softmax"
        assert args.arms is None

    def test_parser_rejects_bad_fantasy(self):
        from repro.cli import build_portfolio_parser

        with pytest.raises(SystemExit):
            build_portfolio_parser().parse_args(["--fantasy", "believer"])

    def test_portfolio_run_prints_arm_table(self, tmp_path, capsys):
        from repro.resilience import read_events

        json_path = tmp_path / "pf.json"
        journal_path = tmp_path / "pf.jsonl"
        code = main([
            "portfolio", "--problem", "sphere", "--dim", "3",
            "--sim-time", "5", "--workers", "2", "--budget", "30",
            "--n-initial", "6", "--seed", "0", "--time-scale", "0",
            "--arms", "kb,random", "--json", str(json_path),
            "--journal", str(journal_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final best" in out
        assert "worker time" in out
        assert "arm " in out  # the per-arm table header
        data = json.loads(json_path.read_text())
        assert data["arm_names"] == ["kb", "random"]
        assert 0.0 <= data["busy_share"] <= 1.0
        events = read_events(journal_path)
        assert events[0]["event"] == "run_started"
        assert events[0]["config"]["mode"] == "portfolio"
        assert any(e["event"] == "dispatch" for e in events)

    def test_quiet_suppresses_arm_table(self, capsys):
        code = main([
            "portfolio", "--problem", "sphere", "--dim", "3",
            "--sim-time", "5", "--workers", "2", "--budget", "20",
            "--n-initial", "6", "--time-scale", "0",
            "--arms", "random", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final best" in out
        assert "mean credit" not in out

    def test_algorithm_help_lists_portfolio(self):
        helptext = build_parser().format_help()
        assert "portfolio" in helptext
