"""Kill-and-resume equivalence tests.

The acceptance property of the resilience subsystem: a run killed at an
arbitrary instant resumes from its journal and reaches exactly the
final incumbent of an uninterrupted run with the same seed. The virtual
clock uses :class:`AnalyticTimeModel` so charged durations (and hence
cycle counts) are machine-independent.
"""

import numpy as np
import pytest

from repro.core.driver import AnalyticTimeModel, run_optimization
from repro.core.registry import make_optimizer
from repro.problems import get_benchmark
from repro.resilience import RunJournal, load_checkpoint, resume_run
from repro.util import ConfigurationError


class KillSwitch:
    """Problem wrapper raising once after ``n_calls`` evaluations."""

    def __init__(self, inner, n_calls):
        self.inner = inner
        self.n_calls = n_calls
        self.calls = 0

    def __call__(self, X):
        self.calls += np.atleast_2d(X).shape[0]
        if self.calls > self.n_calls:
            raise KeyboardInterrupt("simulated kill")
        return self.inner(X)

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def _problem():
    return get_benchmark("ackley", dim=2, sim_time=10.0)


def _reference(algo, budget=250.0):
    optimizer = make_optimizer(algo, _problem(), 4, seed=3)
    return run_optimization(
        _problem(), optimizer, budget, seed=3, time_model=AnalyticTimeModel()
    )


def _killed_run(algo, path, kill_after, budget=250.0):
    killer = KillSwitch(_problem(), kill_after)
    optimizer = make_optimizer(algo, killer, 4, seed=3)
    with pytest.raises(KeyboardInterrupt):
        run_optimization(
            killer,
            optimizer,
            budget,
            seed=3,
            time_model=AnalyticTimeModel(),
            journal=RunJournal(path, fsync=False),
        )


@pytest.mark.parametrize("algo", ["kb_qego", "turbo"])
class TestKillAndResumeEquivalence:
    def test_same_final_incumbent_and_trajectory(self, algo, tmp_path):
        reference = _reference(algo)
        path = tmp_path / "run.jsonl"
        # The 64-point initial design plus a few cycles of 4, then kill.
        _killed_run(algo, path, kill_after=80)
        resumed = resume_run(path, problem=_problem(), fsync=False)

        assert resumed.best_value == reference.best_value
        assert resumed.n_cycles == reference.n_cycles
        assert np.array_equal(resumed.best_x, reference.best_x)
        assert [(r.cycle, r.best_value) for r in resumed.history] == [
            (r.cycle, r.best_value) for r in reference.history
        ]

    def test_double_kill_still_converges(self, algo, tmp_path):
        reference = _reference(algo)
        path = tmp_path / "run.jsonl"
        _killed_run(algo, path, kill_after=70)
        # Kill the *resumed* run too, then resume again.
        killer = KillSwitch(_problem(), 12)
        with pytest.raises(KeyboardInterrupt):
            resume_run(path, problem=killer, fsync=False)
        resumed = resume_run(path, problem=_problem(), fsync=False)
        assert resumed.best_value == reference.best_value
        assert resumed.n_cycles == reference.n_cycles


class TestResumeMechanics:
    def test_completed_journal_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        problem = _problem()
        optimizer = make_optimizer("random", problem, 2, seed=1)
        result = run_optimization(
            problem,
            optimizer,
            60.0,
            n_initial=6,
            seed=1,
            time_model=AnalyticTimeModel(),
            journal=RunJournal(path, fsync=False),
        )
        replayed = resume_run(path, fsync=False)
        assert replayed.best_value == result.best_value
        assert replayed.n_cycles == result.n_cycles
        assert np.array_equal(replayed.best_x, result.best_x)

    def test_kill_during_initial_design_is_unresumable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path, fsync=False)
        journal.record("run_started", config={"n_initial": 8})
        with pytest.raises(ConfigurationError, match="initial design"):
            resume_run(path, fsync=False)

    def test_checkpoint_reports_remaining_budget(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _killed_run("turbo", path, kill_after=80, budget=250.0)
        ckpt = load_checkpoint(path)
        assert not ckpt.completed
        assert 0.0 < ckpt.resume.clock_start < 250.0
        assert ckpt.remaining_budget == pytest.approx(
            250.0 - ckpt.resume.clock_start
        )
        # History carried to the optimizer: initial design + kept cycles.
        assert ckpt.X.shape[0] == ckpt.y_internal.size
        assert ckpt.X.shape[0] >= 64

    def test_sparse_checkpoints_still_equivalent(self, tmp_path):
        """checkpoint_every > 1 discards trailing cycles and re-runs them."""
        reference = _reference("turbo")
        path = tmp_path / "run.jsonl"
        killer = KillSwitch(_problem(), 80)
        optimizer = make_optimizer("turbo", killer, 4, seed=3)
        with pytest.raises(KeyboardInterrupt):
            run_optimization(
                killer,
                optimizer,
                250.0,
                seed=3,
                time_model=AnalyticTimeModel(),
                journal=RunJournal(path, fsync=False),
                checkpoint_every=3,
            )
        resumed = resume_run(path, problem=_problem(), fsync=False)
        assert resumed.best_value == reference.best_value
        assert resumed.n_cycles == reference.n_cycles

    def test_async_journal_refused(self, tmp_path):
        from repro.core.async_driver import run_async_optimization

        path = tmp_path / "async.jsonl"
        run_async_optimization(
            get_benchmark("sphere", dim=2, sim_time=5.0),
            2,
            30.0,
            seed=1,
            journal=RunJournal(path, fsync=False),
        )
        with pytest.raises(ConfigurationError, match="async"):
            resume_run(path, fsync=False)


class TestCampaignResume:
    def test_journaled_campaign_cell_resumes(self, tmp_path, monkeypatch):
        from repro.experiments.campaign import Campaign
        from repro.experiments.presets import Preset

        preset = Preset(
            name="resume-test",
            budget=120.0,
            sim_time=10.0,
            n_seeds=1,
            batch_sizes=(2,),
            time_scale=1.0,
            initial_per_batch=3,
            algorithms=("random",),
            benchmarks=("sphere",),
            dim=2,
        )
        campaign = Campaign(
            preset, root=tmp_path, verbose=False, journal=True
        )
        record = campaign.get("sphere", "random", 2, 0)
        # The journal of the completed cell exists and replays the result.
        jpath = campaign._journal_path(record.key)
        assert jpath.exists()
        replayed = resume_run(jpath, fsync=False)
        assert replayed.best_value == record.best_value

    def test_corrupt_cache_entry_discarded(self, tmp_path):
        from repro.experiments.campaign import Campaign
        from repro.experiments.presets import Preset

        preset = Preset(
            name="corrupt-test",
            budget=80.0,
            sim_time=10.0,
            n_seeds=1,
            batch_sizes=(2,),
            time_scale=1.0,
            initial_per_batch=3,
            algorithms=("random",),
            benchmarks=("sphere",),
            dim=2,
        )
        campaign = Campaign(preset, root=tmp_path, verbose=False)
        record = campaign.get("sphere", "random", 2, 0)
        # Corrupt the cache entry as a pre-atomic torn write would.
        path = campaign._path(record.key)
        path.write_text('{"problem": "sphere", "algo')
        fresh = Campaign(preset, root=tmp_path, verbose=False)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert fresh.missing() == [("sphere", "random", 2, 0)]
