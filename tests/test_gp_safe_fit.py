"""Surrogate self-healing: health checks, fallback ladder, fit failure."""

import numpy as np
import pytest

from repro.gp import GaussianProcess, safe_fit
from repro.gp.fit import fit_hyperparameters
from repro.gp.safe_fit import (
    SafeFitReport,
    data_health_issues,
    duplicate_row_groups,
    model_health_issues,
)
from repro.util import FitFailedError, ModelError, SurrogateUnavailableError


def _smooth_data(rng, n=20):
    X = rng.random((n, 3))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 - 0.5 * X[:, 2]
    return X, y


class TestHealthChecks:
    def test_duplicate_row_groups_finds_repeats(self):
        X = np.array([[0.1, 0.2], [0.5, 0.5], [0.1, 0.2], [0.5, 0.5]])
        keep, drop = duplicate_row_groups(X, span=np.ones(2))
        assert keep.tolist() == [0, 1]
        assert drop.tolist() == [2, 3]

    def test_distinct_rows_are_all_kept(self, rng):
        X = rng.random((15, 3))
        keep, drop = duplicate_row_groups(X, span=np.ones(3))
        assert keep.size == 15
        assert drop.size == 0

    def test_flat_targets_flagged(self, rng, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        X = rng.random((10, 3))
        issues = data_health_issues(gp, X, np.full(10, 3.7))
        assert "flat_targets" in issues

    def test_near_duplicate_rows_flagged(self, rng, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        X = rng.random((10, 3))
        X[7] = X[2] + 1e-12
        issues = data_health_issues(gp, X, rng.random(10))
        assert "near_duplicate_rows" in issues

    def test_healthy_data_has_no_issues(self, rng, unit_bounds3):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        X, y = _smooth_data(rng)
        assert data_health_issues(gp, X, y) == []

    def test_healthy_model_has_no_variance_collapse(self, fitted_gp):
        gp, X, y = fitted_gp
        assert "variance_collapse" not in model_health_issues(gp, X, y)


class TestSafeFit:
    def test_healthy_fit_matches_plain_fit(self, rng, unit_bounds3):
        X, y = _smooth_data(rng)
        plain = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        plain.fit(X, y, n_restarts=1, maxiter=40, seed=7)
        guarded = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        guarded, report = safe_fit(guarded, X, y, n_restarts=1, maxiter=40, seed=7)
        assert report.level == 0
        assert not report.degraded
        np.testing.assert_allclose(guarded.kernel.theta, plain.kernel.theta)
        np.testing.assert_allclose(guarded.log_noise, plain.log_noise)

    def test_degenerate_design_still_yields_model(self, unit_bounds3):
        # Every row identical: the straight fit's kernel matrix is
        # maximally ill-conditioned, yet safe_fit must return a model
        # able to predict.
        X = np.tile([0.3, 0.6, 0.9], (12, 1))
        y = np.zeros(12)
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        gp, report = safe_fit(gp, X, y, n_restarts=1, maxiter=30, seed=0)
        mu, sigma = gp.predict(np.array([[0.5, 0.5, 0.5]]))
        assert np.all(np.isfinite(mu)) and np.all(np.isfinite(sigma))
        assert "near_duplicate_rows" in report.issues

    def test_report_events_cover_issues_and_fallbacks(self):
        report = SafeFitReport(
            level=2, issues=["flat_targets"], errors=["NumericalError: x"],
            n_dropped=3,
        )
        events = report.events()
        kinds = {ev["kind"] for ev in events}
        assert kinds == {"flat_targets", "fit_failed"}
        fallback = next(ev for ev in events if ev["kind"] == "fit_failed")
        assert fallback["action"] == "dedupe_refit"
        assert fallback["n_dropped"] == 3

    def test_ladder_exhaustion_raises_surrogate_unavailable(
        self, rng, unit_bounds3
    ):
        class AlwaysSickGP(GaussianProcess):
            def fit(self, *args, **kwargs):
                raise ModelError("forced failure")

        gp = AlwaysSickGP(dim=3, input_bounds=unit_bounds3)
        X, y = _smooth_data(rng)
        with pytest.raises(SurrogateUnavailableError):
            safe_fit(gp, X, y, seed=0)

    def test_ladder_rung_one_reuses_incumbent_hypers(self, rng, unit_bounds3):
        class FlakyFitGP(GaussianProcess):
            def fit(self, X, y, *, optimize=True, **kwargs):
                if optimize and kwargs.get("n_restarts") is not None:
                    raise ModelError("hyperparameter search diverged")
                return super().fit(X, y, optimize=False)

        gp = FlakyFitGP(dim=3, input_bounds=unit_bounds3)
        X, y = _smooth_data(rng)
        gp2, report = safe_fit(gp, X, y, n_restarts=1, maxiter=30, seed=0)
        assert report.level == 1
        assert report.action == "reuse_hypers"
        mu, _ = gp2.predict(X[:3])
        assert np.all(np.isfinite(mu))


class TestFitHyperparameters:
    def test_all_nonfinite_starts_raise_and_restore_theta(
        self, rng, unit_bounds3, monkeypatch
    ):
        gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
        X, y = _smooth_data(rng)
        gp.fit(X, y, optimize=False)
        kernel = gp.kernel
        theta_before = np.asarray(kernel.theta).copy()

        import repro.gp.fit as fit_mod

        monkeypatch.setattr(
            fit_mod,
            "mll_value_and_grad",
            lambda *args, **kwargs: (np.nan, np.zeros(theta_before.size + 1)),
        )
        with pytest.raises(FitFailedError):
            fit_hyperparameters(
                kernel, gp.log_noise, gp.noise_bounds, X, y,
                n_restarts=1, maxiter=10, seed=0,
            )
        # The failed search must not leave a clipped/garbage theta behind.
        np.testing.assert_array_equal(np.asarray(kernel.theta), theta_before)
