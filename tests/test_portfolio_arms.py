"""Tests for the acquisition-arm abstraction."""

import numpy as np
import pytest

from repro.portfolio.arms import (
    ARM_TYPES,
    DEFAULT_ARMS,
    ArmContext,
    BSPArm,
    FailingArm,
    MicArm,
    TuRBOArm,
    make_arm,
)
from repro.problems import get_benchmark
from repro.util import ConfigurationError

FAST_ACQ = {"n_restarts": 2, "raw_samples": 32, "maxiter": 15}


@pytest.fixture(scope="module")
def problem():
    return get_benchmark("sphere", dim=3, sim_time=0.0)


@pytest.fixture(scope="module")
def armdata(problem):
    from repro.gp import GaussianProcess

    rng = np.random.default_rng(0)
    lo, hi = problem.lower, problem.upper
    X = lo + rng.random((20, 3)) * (hi - lo)
    y = np.asarray(problem(X), dtype=np.float64)
    gp = GaussianProcess(dim=3, input_bounds=problem.bounds)
    gp.fit(X, y, n_restarts=0, maxiter=30, seed=0)
    return X, y, gp


def _ctx(problem, armdata, seed=0, model="gp"):
    X, y, gp = armdata
    return ArmContext(
        problem=problem,
        X=X,
        y=y,
        model=gp if model == "gp" else None,
        gp=gp if model == "gp" else None,
        best_f=float(np.min(y)),
        in_flight=np.empty((0, 3)),
        rng=np.random.default_rng(seed),
        acq_options=FAST_ACQ,
    )


class TestProposals:
    @pytest.mark.parametrize("name", DEFAULT_ARMS)
    def test_in_bounds(self, problem, armdata, name):
        arm = make_arm(name, problem, FAST_ACQ)
        x = arm.propose(_ctx(problem, armdata))
        assert x.shape == (3,)
        assert np.all(x >= problem.lower) and np.all(x <= problem.upper)
        assert np.all(np.isfinite(x))

    @pytest.mark.parametrize("name", DEFAULT_ARMS)
    def test_degraded_model_still_proposes(self, problem, armdata, name):
        """model=None (sick surrogate) must yield a valid candidate."""
        arm = make_arm(name, problem, FAST_ACQ)
        x = arm.propose(_ctx(problem, armdata, model=None))
        assert np.all(x >= problem.lower) and np.all(x <= problem.upper)

    def test_make_arm_unknown(self, problem):
        with pytest.raises(ConfigurationError):
            make_arm("gradient-descent", problem)

    def test_failing_arm_raises(self, problem, armdata):
        with pytest.raises(RuntimeError):
            FailingArm(problem).propose(_ctx(problem, armdata))

    def test_registry_covers_defaults(self):
        assert set(DEFAULT_ARMS) <= set(ARM_TYPES)


class TestMicRotation:
    def test_alternates_criteria(self, problem, armdata):
        arm = MicArm(problem, FAST_ACQ)
        assert arm.k == 0
        arm.propose(_ctx(problem, armdata))
        arm.propose(_ctx(problem, armdata))
        assert arm.k == 2

    def test_state_roundtrip(self, problem):
        arm = MicArm(problem, FAST_ACQ)
        arm.k = 5
        other = MicArm(problem, FAST_ACQ)
        other.set_state(arm.get_state())
        assert other.k == 5


class TestTuRBODynamics:
    def test_doubles_after_successes(self, problem):
        arm = TuRBOArm(problem, FAST_ACQ, succ_tol=3)
        L0 = arm.length
        for _ in range(3):
            arm.observe(np.zeros(3), 0.0, improved=True)
        assert arm.length == pytest.approx(2 * L0)

    def test_halves_after_failures(self, problem):
        arm = TuRBOArm(problem, FAST_ACQ, fail_tol=4)
        L0 = arm.length
        for _ in range(4):
            arm.observe(np.zeros(3), 0.0, improved=False)
        assert arm.length == pytest.approx(L0 / 2)

    def test_restart_below_min(self, problem):
        arm = TuRBOArm(problem, FAST_ACQ, fail_tol=1)
        for _ in range(30):
            arm.observe(np.zeros(3), 0.0, improved=False)
        assert arm.n_restarts_done >= 1
        assert arm.length >= arm.length_min

    def test_trust_region_inside_domain(self, problem, armdata):
        X, y, gp = armdata
        arm = TuRBOArm(problem, FAST_ACQ)
        center = X[int(np.argmin(y))]
        bounds = arm._bounds(gp, center)
        assert np.all(bounds[:, 0] >= problem.lower)
        assert np.all(bounds[:, 1] <= problem.upper)
        assert np.all(bounds[:, 1] > bounds[:, 0])

    def test_state_roundtrip(self, problem):
        arm = TuRBOArm(problem, FAST_ACQ)
        arm.length, arm.n_succ, arm.n_fail = 0.4, 2, 1
        arm.n_restarts_done = 3
        other = TuRBOArm(problem, FAST_ACQ)
        other.set_state(arm.get_state())
        assert (other.length, other.n_succ, other.n_fail,
                other.n_restarts_done) == (0.4, 2, 1, 3)

    def test_missing_state_key_rejected(self, problem):
        with pytest.raises(ConfigurationError):
            TuRBOArm(problem, FAST_ACQ).set_state({"length": 0.8})


class TestBSPPartition:
    def test_boxes_partition_domain(self, problem):
        arm = BSPArm(problem, FAST_ACQ, n_regions=8)
        vol = sum(float(np.prod(b[:, 1] - b[:, 0])) for b in arm.boxes)
        span = float(np.prod(problem.upper - problem.lower))
        assert vol == pytest.approx(span)
        assert len(arm.boxes) == 8

    def test_improvement_splits_owning_box(self, problem):
        arm = BSPArm(problem, FAST_ACQ, n_regions=4)
        n0 = len(arm.boxes)
        x = arm.boxes[0].mean(axis=1)
        arm.observe(x, 0.0, improved=True)
        assert len(arm.boxes) == n0 + 1

    def test_split_capped_at_max_regions(self, problem):
        arm = BSPArm(problem, FAST_ACQ, n_regions=4, max_regions=4)
        arm.observe(arm.boxes[0].mean(axis=1), 0.0, improved=True)
        assert len(arm.boxes) == 4

    def test_cursor_rotates(self, problem, armdata):
        arm = BSPArm(problem, FAST_ACQ, n_regions=4)
        ctx = _ctx(problem, armdata, model=None)
        assert arm.cursor == 0
        arm.propose(ctx)
        arm.propose(ctx)
        assert arm.cursor == 2

    def test_state_roundtrip_through_json(self, problem):
        import json

        arm = BSPArm(problem, FAST_ACQ, n_regions=8)
        arm.cursor = 3
        blob = json.dumps(arm.get_state())
        other = BSPArm(problem, FAST_ACQ, n_regions=2)
        other.set_state(json.loads(blob))
        assert other.cursor == 3
        assert len(other.boxes) == len(arm.boxes)
        for a, b in zip(other.boxes, arm.boxes):
            assert np.array_equal(a, b)


class TestDeterminism:
    @pytest.mark.parametrize("name", DEFAULT_ARMS)
    def test_same_rng_state_same_proposal(self, problem, armdata, name):
        a = make_arm(name, problem, FAST_ACQ)
        b = make_arm(name, problem, FAST_ACQ)
        xa = a.propose(_ctx(problem, armdata, seed=42))
        xb = b.propose(_ctx(problem, armdata, seed=42))
        assert np.array_equal(xa, xb)
