"""Tests for the ask/tell engine (repro.service.engine)."""

import json

import numpy as np
import pytest

from repro.problems import FunctionProblem, get_benchmark
from repro.service import AskTellEngine
from repro.util import (
    BackpressureError,
    ConfigurationError,
    UnknownTicketError,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def problem():
    return get_benchmark("sphere", dim=3)


def make_engine(problem, **kwargs):
    defaults = dict(
        algorithm="turbo", n_batch=2, seed=0, n_initial=6, ask_timeout=100.0
    )
    defaults.update(kwargs)
    return AskTellEngine(problem, **defaults)


def drive_to_init(engine, problem):
    """Tell the whole initial design; returns the tickets told."""
    told = []
    while not engine.initialized:
        t = engine.ask(1)[0]
        engine.tell(t["ticket"], float(problem(t["x"][None, :])[0]))
        told.append(t)
    return told


class TestAskTellProtocol:
    def test_initialization_threshold(self, problem):
        eng = make_engine(problem)
        told = drive_to_init(eng, problem)
        assert len(told) == 6
        assert eng.initialized
        assert eng.initial_best == eng.best[1]
        assert eng.optimizer.y.size == 6

    def test_overlapping_asks_before_init_do_not_block(self, problem):
        eng = make_engine(problem)
        tickets = eng.ask(10)  # 6 design + 4 overflow
        assert len(tickets) == 10
        X = np.vstack([t["x"] for t in tickets])
        assert np.unique(X, axis=0).shape[0] == 10  # all distinct

    def test_post_init_updates_flow_into_optimizer(self, problem):
        eng = make_engine(problem)
        drive_to_init(eng, problem)
        t = eng.ask(1)[0]
        eng.tell(t["ticket"], float(problem(t["x"][None, :])[0]))
        assert eng.optimizer.y.size == 7
        assert eng.counters["proposals"] >= 1

    def test_best_none_before_any_tell(self, problem):
        eng = make_engine(problem)
        assert eng.best is None
        t = eng.ask(1)[0]
        eng.tell(t["ticket"], 5.0)
        assert eng.best[1] == 5.0

    def test_maximize_orientation(self):
        prob = FunctionProblem(
            lambda X: np.sum(X, axis=1), [(0, 1)] * 2,
            name="maxsum", maximize=True,
        )
        eng = AskTellEngine(prob, algorithm="random", n_batch=2,
                            seed=0, n_initial=4)
        for t in eng.ask(4):
            eng.tell(t["ticket"], float(np.sum(t["x"])))
        x, best = eng.best
        assert best == pytest.approx(float(np.sum(x)))
        t = eng.ask(1)[0]
        eng.tell(t["ticket"], 1e9)  # a huge profit must become the best
        assert eng.best[1] == 1e9

    def test_fantasies_separate_overlapping_asks(self, problem):
        eng = make_engine(problem, algorithm="kb-q-ego")
        drive_to_init(eng, problem)
        first = eng.ask(2)  # outstanding, never told
        second = eng.ask(2)  # proposed under fantasies of `first`
        X1 = np.vstack([t["x"] for t in first])
        X2 = np.vstack([t["x"] for t in second])
        dists = np.min(
            np.linalg.norm(X1[:, None, :] - X2[None, :, :], axis=-1)
        )
        assert dists > 1e-8  # no collision with in-flight work

    def test_ask_n_validation(self, problem):
        with pytest.raises(ConfigurationError):
            make_engine(problem).ask(0)

    def test_bad_config_rejected(self, problem):
        with pytest.raises(ConfigurationError):
            make_engine(problem, on_nonfinite="explode")
        with pytest.raises(ConfigurationError):
            make_engine(problem, max_pending=0)
        with pytest.raises(ConfigurationError):
            make_engine(problem, ask_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            make_engine(problem, n_initial=0)


class TestBackpressure:
    def test_max_pending_caps_in_flight_asks(self, problem):
        eng = make_engine(problem, max_pending=3)
        eng.ask(3)
        with pytest.raises(BackpressureError):
            eng.ask(1)

    def test_tell_frees_capacity(self, problem):
        eng = make_engine(problem, max_pending=2)
        t = eng.ask(2)
        with pytest.raises(BackpressureError):
            eng.ask(1)
        eng.tell(t[0]["ticket"], 1.0)
        eng.ask(1)  # free slot again


class TestAdversarialTells:
    def test_duplicate_tell_is_idempotent(self, problem):
        eng = make_engine(problem)
        t = eng.ask(1)[0]
        assert eng.tell(t["ticket"], 1.0)["status"] == "accepted"
        assert eng.tell(t["ticket"], 2.0)["status"] == "duplicate"
        assert eng.counters["tells"] == 1
        assert eng.counters["duplicates"] == 1

    def test_unknown_ticket_raises(self, problem):
        eng = make_engine(problem)
        eng.ask(1)
        with pytest.raises(UnknownTicketError):
            eng.tell("t99999999", 0.0)

    def test_timeout_requeues_and_reissues_same_point(self, problem):
        clock = FakeClock()
        eng = make_engine(problem, ask_timeout=10.0, clock=clock)
        t = eng.ask(1)[0]
        clock.advance(11.0)
        assert eng.sweep_expired() == 1
        assert eng.n_pending == 0
        t2 = eng.ask(1)[0]  # the requeued point comes back first
        np.testing.assert_array_equal(t2["x"], t["x"])
        assert t2["ticket"] != t["ticket"]
        assert eng.counters["requeues"] == 1

    def test_tell_for_expired_ticket_acknowledged_not_applied(self, problem):
        clock = FakeClock()
        eng = make_engine(problem, ask_timeout=10.0, clock=clock)
        t = eng.ask(1)[0]
        clock.advance(11.0)
        assert eng.tell(t["ticket"], 1.0)["status"] == "expired"
        assert eng.counters["tells"] == 0
        assert eng.counters["expired_tells"] == 1
        # the reissued ticket still works
        t2 = eng.ask(1)[0]
        assert eng.tell(t2["ticket"], 1.0)["status"] == "accepted"

    def test_nan_tell_is_guarded_not_fatal(self, problem):
        eng = make_engine(problem)
        drive_to_init(eng, problem)
        best_before = eng.best[1]
        t = eng.ask(1)[0]
        with pytest.warns(RuntimeWarning, match="non-finite"):
            result = eng.tell(t["ticket"], float("nan"))
        assert result["status"] == "accepted"
        assert eng.counters["nonfinite"] == 1
        assert eng.best[1] == best_before  # imputed as worst, not best
        assert np.all(np.isfinite(eng.optimizer.y))
        # the session keeps working afterwards
        t = eng.ask(1)[0]
        assert eng.tell(t["ticket"], 1.0)["status"] == "accepted"

    def test_nan_tell_dropped_under_drop_policy(self, problem):
        eng = make_engine(problem, on_nonfinite="drop")
        drive_to_init(eng, problem)
        n = eng.optimizer.y.size
        t = eng.ask(1)[0]
        with pytest.warns(RuntimeWarning, match="non-finite"):
            assert eng.tell(t["ticket"], float("inf"))["status"] == "dropped"
        assert eng.optimizer.y.size == n
        assert eng.counters["dropped"] == 1

    def test_nan_in_initial_design_imputed(self, problem):
        eng = make_engine(problem, n_initial=4)
        tickets = eng.ask(4)
        for t in tickets[:-1]:
            eng.tell(t["ticket"], float(problem(t["x"][None, :])[0]))
        with pytest.warns(RuntimeWarning, match="non-finite"):
            eng.tell(tickets[-1]["ticket"], float("nan"))
        assert eng.initialized
        assert np.all(np.isfinite(eng.optimizer.y))


class TestCheckpointResume:
    def _mid_flight_engine(self, problem):
        eng = make_engine(problem)
        drive_to_init(eng, problem)
        eng.ask(2)  # leave work in flight
        t = eng.ask(1)[0]
        eng.tell(t["ticket"], float(problem(t["x"][None, :])[0]))
        return eng

    def test_state_roundtrips_through_json(self, problem):
        eng = self._mid_flight_engine(problem)
        state = json.loads(json.dumps(eng.get_state()))
        eng2 = make_engine(problem)
        eng2.set_state(state)
        assert eng2.best[1] == eng.best[1]
        assert sorted(eng2._pending) == sorted(eng._pending)
        assert eng2.counters == eng.counters

    def test_restored_engine_continues_identically(self, problem):
        eng = self._mid_flight_engine(problem)
        state = json.loads(json.dumps(eng.get_state()))
        eng2 = make_engine(problem)
        eng2.set_state(state)
        # identical future: same asks, same bests after the same tells
        for _ in range(3):
            a1, a2 = eng.ask(1)[0], eng2.ask(1)[0]
            assert a1["ticket"] == a2["ticket"]
            np.testing.assert_array_equal(a1["x"], a2["x"])
            y = float(problem(a1["x"][None, :])[0])
            assert (
                eng.tell(a1["ticket"], y)["status"]
                == eng2.tell(a2["ticket"], y)["status"]
            )
        assert eng.best[1] == eng2.best[1]

    def test_restored_pending_tickets_still_tellable(self, problem):
        eng = self._mid_flight_engine(problem)
        pending = list(eng._pending.items())
        state = json.loads(json.dumps(eng.get_state()))
        eng2 = make_engine(problem)
        eng2.set_state(state)
        ticket, rec = pending[0]
        assert eng2.tell(
            ticket, float(problem(rec["x"][None, :])[0])
        )["status"] == "accepted"

    def test_schema_mismatch_rejected(self, problem):
        eng = make_engine(problem)
        state = eng.get_state()
        state["schema"] = 999
        with pytest.raises(ConfigurationError):
            make_engine(problem).set_state(state)

    def test_preinit_state_roundtrip(self, problem):
        eng = make_engine(problem)
        t = eng.ask(2)
        eng.tell(t[0]["ticket"], 3.0)
        state = json.loads(json.dumps(eng.get_state()))
        eng2 = make_engine(problem)
        eng2.set_state(state)
        assert not eng2.initialized
        assert eng2.best[1] == 3.0
        assert eng2.tell(t[1]["ticket"], 1.0)["status"] == "accepted"


class TestFactorCacheEngine:
    """The factor cache + refit_every under the engine's hottest loop:
    fantasies over in-flight asks, ticket-timeout requeues, and
    kill/resume through the serialized multi-block cache."""

    OPTS = {
        "gp_options": {"refit_every": 4, "n_restarts": 0, "maxiter": 15},
        "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 10,
                        "n_mc": 32},
    }

    def _make(self, problem, clock, **gp_overrides):
        # kb_qego fits on the full (real + fantasy) training set every
        # proposal, so the cache ladder is exactly predictable here.
        opts = {
            "gp_options": {**self.OPTS["gp_options"], **gp_overrides},
            "acq_options": self.OPTS["acq_options"],
        }
        return make_engine(
            problem, algorithm="kb_qego", ask_timeout=10.0, clock=clock,
            algo_options=opts,
        )

    def test_fantasy_seam_truncates_not_rebuilds(self, problem):
        """When an in-flight ask resolves out of proposal order, the
        fantasy suffix no longer matches the cached factor; the next
        proposal must truncate back to the real-data seam and re-append
        — never refactorize from scratch."""
        from repro.obs import NULL_METRICS, MetricsRegistry, set_metrics

        clock = FakeClock()
        eng = self._make(problem, clock)
        drive_to_init(eng, problem)
        reg = MetricsRegistry()
        previous = set_metrics(reg)
        try:
            a, b = eng.ask(2)     # proposal 1: no fantasies yet -> miss
            eng.ask(1)            # proposal 2: fantasies [xa, xb] -> append
            # b resolves before a: the realized row order now disagrees
            # with the fantasized suffix
            eng.tell(b["ticket"], float(problem(b["x"][None, :])[0]))
            eng.ask(2)            # proposal 3: truncate at the seam
            assert reg.counter("gp.refit.cache_miss").value == 1.0
            assert reg.counter("gp.refit.cache_append").value == 1.0
            assert reg.counter("gp.refit.cache_truncate").value == 1.0
        finally:
            set_metrics(previous if previous is not None else NULL_METRICS)

    def test_kill_resume_with_requeue_bit_identical(self, problem):
        """An engine killed after a timeout-requeue workload and
        restored from its JSON state issues byte-identical asks — the
        serialized multi-block factor cache and carried hyperparameters
        replay exactly. The snapshot lands at a quiescent point (no
        in-flight tickets): the surrogate that feeds fantasy values is
        deliberately not part of the snapshot, so only a quiescent
        state round-trips bit-exactly — the cache and refit state must
        then carry the whole determinism burden."""
        clock = FakeClock()
        eng = self._make(problem, clock)
        drive_to_init(eng, problem)

        # requeue both in-flight asks, then force a fantasized proposal
        # over the requeued points before resolving everything
        eng.ask(2)
        clock.advance(50.0)
        assert eng.sweep_expired() == 2   # ticket-timeout requeue
        open_tickets = [eng.ask(1)[0], eng.ask(1)[0]]   # drain the queue
        open_tickets.append(eng.ask(1)[0])  # fantasized, cache-append fit
        while open_tickets:
            t = open_tickets.pop(0)
            eng.tell(t["ticket"], float(problem(t["x"][None, :])[0]))
        t = eng.ask(1)[0]                 # drain the proposal leftover
        eng.tell(t["ticket"], float(problem(t["x"][None, :])[0]))

        state = json.loads(json.dumps(eng.get_state()))
        # the churned cache really is multi-block in the snapshot
        assert state["optimizer"]["factor_cache"] is not None
        eng2 = self._make(problem, FakeClock(clock.t))
        eng2.set_state(state)

        for _ in range(4):
            a1, a2 = eng.ask(1)[0], eng2.ask(1)[0]
            assert a1["ticket"] == a2["ticket"]
            np.testing.assert_array_equal(a1["x"], a2["x"])
            y = float(problem(a1["x"][None, :])[0])
            assert (
                eng.tell(a1["ticket"], y)["status"]
                == eng2.tell(a2["ticket"], y)["status"]
            )
        assert eng.best[1] == eng2.best[1]

    def test_refit_state_survives_round_trip(self, problem):
        clock = FakeClock()
        eng = self._make(problem, clock)
        drive_to_init(eng, problem)
        eng.ask(2)
        state = json.loads(json.dumps(eng.get_state()))
        assert "refit" in state["optimizer"]
        eng2 = self._make(problem, FakeClock(clock.t))
        eng2.set_state(state)
        assert eng2.optimizer._fits_since_full == eng.optimizer._fits_since_full
