"""Tests for problem wrappers (counting, noise, shift)."""

import numpy as np
import pytest

from repro.problems import CountingProblem, NoisyProblem, ShiftedProblem, get_benchmark


@pytest.fixture
def base():
    return get_benchmark("sphere", dim=3, sim_time=2.0)


class TestCounting:
    def test_counts(self, base, rng):
        cp = CountingProblem(base)
        cp(rng.random((4, 3)))
        cp(rng.random((2, 3)))
        assert cp.n_calls == 2
        assert cp.n_evals == 6

    def test_values_unchanged(self, base, rng):
        cp = CountingProblem(base)
        X = rng.random((5, 3))
        np.testing.assert_array_equal(cp(X), base(X))

    def test_metadata_forwarded(self, base):
        cp = CountingProblem(base)
        assert cp.sim_time == base.sim_time
        assert cp.dim == base.dim
        assert cp.maximize == base.maximize

    def test_record_history(self, base, rng):
        cp = CountingProblem(base, record=True)
        X = rng.random((3, 3))
        cp(X)
        assert len(cp.history) == 1
        np.testing.assert_array_equal(cp.history[0][0], X)

    def test_reset(self, base, rng):
        cp = CountingProblem(base, record=True)
        cp(rng.random((3, 3)))
        cp.reset()
        assert cp.n_calls == 0 and cp.n_evals == 0 and not cp.history


class TestNoisy:
    def test_noise_added(self, base, rng):
        noisy = NoisyProblem(base, noise_std=0.5, seed=0)
        X = rng.random((50, 3))
        diff = noisy(X) - base(X)
        assert np.std(diff) == pytest.approx(0.5, rel=0.4)

    def test_seeded_reproducible(self, base, rng):
        X = rng.random((10, 3))
        a = NoisyProblem(base, 0.3, seed=7)(X)
        b = NoisyProblem(base, 0.3, seed=7)(X)
        np.testing.assert_array_equal(a, b)

    def test_invalid_std_rejected(self, base):
        with pytest.raises(Exception):
            NoisyProblem(base, noise_std=0.0)


class TestShifted:
    def test_optimum_moves(self, base):
        shift = np.array([0.5, -0.5, 1.0])
        sp = ShiftedProblem(base, shift)
        assert sp(shift[None, :])[0] == pytest.approx(0.0, abs=1e-12)

    def test_wrong_shift_length(self, base):
        with pytest.raises(ValueError):
            ShiftedProblem(base, [1.0, 2.0])
