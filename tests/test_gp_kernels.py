"""Tests for kernel values, structure and composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    RBF,
    Matern12,
    Matern32,
    Matern52,
    ProductKernel,
    ScaledKernel,
    SumKernel,
    make_kernel,
)
from repro.util import ConfigurationError

ALL_STATIONARY = [RBF, Matern12, Matern32, Matern52]


def _kernels():
    out = []
    for cls in ALL_STATIONARY:
        out.append(cls(lengthscale=0.7))
        out.append(cls(lengthscale=[0.5, 1.0, 2.0], ard_dims=3))
    out.append(ScaledKernel(Matern52(lengthscale=0.4), outputscale=2.5))
    out.append(SumKernel(RBF(0.5), Matern32(1.0)))
    out.append(ProductKernel(RBF(0.5), Matern52(1.0)))
    return out


@pytest.mark.parametrize("kernel", _kernels(), ids=lambda k: type(k).__name__ + str(id(k) % 97))
class TestKernelAxioms:
    def test_symmetry(self, kernel, rng):
        X = rng.random((8, 3))
        K = kernel(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    def test_psd(self, kernel, rng):
        X = rng.random((10, 3))
        eig = np.linalg.eigvalsh(kernel(X))
        assert eig.min() > -1e-8

    def test_diag_matches_full(self, kernel, rng):
        X = rng.random((6, 3))
        np.testing.assert_allclose(kernel.diag(X), np.diag(kernel(X)), atol=1e-12)

    def test_cross_shape(self, kernel, rng):
        K = kernel(rng.random((4, 3)), rng.random((7, 3)))
        assert K.shape == (4, 7)

    def test_theta_roundtrip(self, kernel):
        theta = kernel.theta
        kernel.theta = theta + 0.1
        np.testing.assert_allclose(kernel.theta, theta + 0.1)
        kernel.theta = theta

    def test_theta_bounds_shape(self, kernel):
        b = kernel.theta_bounds
        assert b.shape == (kernel.n_params, 2)
        assert np.all(b[:, 0] < b[:, 1])

    def test_clone_independent(self, kernel):
        c = kernel.clone()
        c.theta = c.theta + 1.0
        assert not np.allclose(c.theta, kernel.theta)

    def test_param_gradient_stack_shape(self, kernel, rng):
        X = rng.random((5, 3))
        g = kernel.param_gradients(X)
        assert g.shape == (kernel.n_params, 5, 5)

    def test_iter_matches_stack(self, kernel, rng):
        X = rng.random((5, 3))
        stack = kernel.param_gradients(X)
        lazy = list(kernel.iter_param_gradients(X))
        assert len(lazy) == stack.shape[0]
        for a, b in zip(stack, lazy):
            np.testing.assert_allclose(a, b, atol=1e-12)


class TestKnownValues:
    def test_rbf_value(self):
        k = RBF(lengthscale=1.0)
        r2 = 2.0
        x1 = np.zeros((1, 2))
        x2 = np.array([[1.0, 1.0]])
        assert k(x1, x2)[0, 0] == pytest.approx(np.exp(-0.5 * r2))

    def test_matern12_value(self):
        k = Matern12(lengthscale=2.0)
        x1, x2 = np.zeros((1, 1)), np.array([[3.0]])
        assert k(x1, x2)[0, 0] == pytest.approx(np.exp(-1.5))

    def test_matern52_unit_diagonal(self, rng):
        k = Matern52(lengthscale=0.3)
        X = rng.random((4, 2))
        np.testing.assert_allclose(np.diag(k(X)), 1.0)

    def test_scaled_kernel_scales(self, rng):
        inner = Matern52(0.5)
        k = ScaledKernel(inner, outputscale=3.0)
        X = rng.random((4, 2))
        np.testing.assert_allclose(k(X), 3.0 * inner(X))

    def test_sum_and_product_operators(self, rng):
        a, b = RBF(0.5), Matern32(1.0)
        X = rng.random((4, 2))
        np.testing.assert_allclose((a + b)(X), a(X) + b(X))
        np.testing.assert_allclose((a * b)(X), a(X) * b(X))

    @settings(max_examples=30, deadline=None)
    @given(
        ls=st.floats(0.05, 10.0),
        dist=st.floats(0.0, 5.0),
    )
    def test_stationary_decreasing_in_distance(self, ls, dist):
        k = Matern52(lengthscale=ls)
        x0 = np.zeros((1, 1))
        near = k(x0, np.array([[dist]]))[0, 0]
        far = k(x0, np.array([[dist + 0.5]]))[0, 0]
        assert far <= near + 1e-12


class TestConfiguration:
    def test_bad_lengthscale(self):
        with pytest.raises(ConfigurationError):
            Matern52(lengthscale=-1.0)

    def test_ard_dims_mismatch(self):
        with pytest.raises(ConfigurationError):
            Matern52(lengthscale=[1.0, 2.0], ard_dims=3)

    def test_scalar_broadcast_to_ard(self):
        k = Matern52(lengthscale=0.5, ard_dims=4)
        assert k.lengthscale.shape == (4,)
        assert k.ard

    def test_make_kernel_default(self):
        k = make_kernel("matern52", dim=5)
        assert isinstance(k, ScaledKernel)
        assert isinstance(k.inner, Matern52)
        assert k.inner.lengthscale.shape == (5,)

    def test_make_kernel_requires_dim_for_ard(self):
        with pytest.raises(ConfigurationError):
            make_kernel("rbf")

    def test_make_kernel_unknown(self):
        with pytest.raises(ConfigurationError):
            make_kernel("periodic", dim=2)

    def test_theta_wrong_length(self):
        k = Matern52(lengthscale=[1.0, 1.0], ard_dims=2)
        with pytest.raises(ConfigurationError):
            k.theta = np.zeros(5)
