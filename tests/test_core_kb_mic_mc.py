"""Algorithm-specific tests for KB-q-EGO, mic-q-EGO and MC-based q-EGO."""

import numpy as np
import pytest

from repro.acquisition import ExpectedImprovement, UpperConfidenceBound
from repro.core import KBqEGO, MCqEGO, MicQEGO, RandomSearch
from repro.doe import latin_hypercube
from repro.problems import get_benchmark

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


def _init(cls, q, seed=0, **kwargs):
    problem = get_benchmark("sphere", dim=3)
    opt = cls(problem, q, seed=seed, **FAST, **kwargs)
    X0 = latin_hypercube(10, problem.bounds, seed=seed)
    opt.initialize(X0, problem(X0))
    return problem, opt


class TestKB:
    def test_fantasies_do_not_leak_into_data(self):
        """The KB fantasy observations must never enter the optimizer's
        real data set."""
        problem, opt = _init(KBqEGO, q=4)
        n0 = opt.X.shape[0]
        opt.propose()
        assert opt.X.shape[0] == n0

    def test_q1_no_fantasy_needed(self):
        _, opt = _init(KBqEGO, q=1)
        prop = opt.propose()
        assert prop.X.shape == (1, 3)

    def test_acq_time_grows_with_q(self):
        """The paper's core scalability issue: q sequential updates."""
        _, opt1 = _init(KBqEGO, q=1)
        _, opt8 = _init(KBqEGO, q=8)
        t1 = np.median([opt1.propose().acq_time for _ in range(3)])
        t8 = np.median([opt8.propose().acq_time for _ in range(3)])
        assert t8 > t1


class TestMic:
    def test_q1_uses_single_criterion(self):
        _, opt = _init(MicQEGO, q=1)
        gp, _ = opt._fit_gp()
        crits = opt._criteria(gp, opt.best_f)
        assert len(crits) == 1
        assert isinstance(crits[0], ExpectedImprovement)

    def test_q2_uses_ei_and_ucb(self):
        _, opt = _init(MicQEGO, q=2)
        gp, _ = opt._fit_gp()
        crits = opt._criteria(gp, opt.best_f)
        assert isinstance(crits[0], ExpectedImprovement)
        assert isinstance(crits[1], UpperConfidenceBound)

    def test_odd_batch_size_handled(self):
        _, opt = _init(MicQEGO, q=3)
        prop = opt.propose()
        assert prop.X.shape == (3, 3)

    def test_custom_ucb_beta(self):
        _, opt = _init(MicQEGO, q=2, ucb_beta=9.0)
        gp, _ = opt._fit_gp()
        assert opt._criteria(gp, opt.best_f)[1].beta == 9.0

    def test_fewer_model_updates_than_kb(self):
        """mic's whole point: half the fantasy updates per cycle, so
        its acquisition should not be slower than KB's at same q."""
        _, kb = _init(KBqEGO, q=8)
        _, mic = _init(MicQEGO, q=8)
        t_kb = np.median([kb.propose().acq_time for _ in range(3)])
        t_mic = np.median([mic.propose().acq_time for _ in range(3)])
        assert t_mic < t_kb * 1.5


class TestMC:
    def test_q1_uses_analytic_ei(self):
        _, opt = _init(MCqEGO, q=1)
        prop = opt.propose()
        assert prop.X.shape == (1, 3)

    def test_joint_batch(self):
        _, opt = _init(MCqEGO, q=4)
        prop = opt.propose()
        assert prop.X.shape == (4, 3)


class TestRandom:
    def test_uniform_in_bounds(self):
        problem = get_benchmark("schwefel", dim=4)
        opt = RandomSearch(problem, 8, seed=0)
        opt.initialize(np.zeros((1, 4)), problem(np.zeros((1, 4))))
        prop = opt.propose()
        assert prop.X.shape == (8, 4)
        assert np.all(prop.X >= problem.lower) and np.all(prop.X <= problem.upper)

    def test_negligible_acquisition_cost(self):
        problem = get_benchmark("sphere", dim=3)
        opt = RandomSearch(problem, 4, seed=0)
        opt.initialize(np.zeros((1, 3)), problem(np.zeros((1, 3))))
        prop = opt.propose()
        assert prop.fit_time == 0.0
        assert prop.acq_time < 0.05

    def test_does_not_use_surrogate(self):
        assert not RandomSearch.uses_surrogate
