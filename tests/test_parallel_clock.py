"""Tests for the clocks."""

import pytest

from repro.parallel import VirtualClock, WallClock
from repro.util import ValidationError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(3.0)
        c.advance(0.5)
        assert c.now == 3.5

    def test_no_spontaneous_flow(self):
        import time

        c = VirtualClock()
        time.sleep(0.01)
        assert c.now == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValidationError):
            VirtualClock().advance(-1.0)

    def test_reset(self):
        c = VirtualClock()
        c.advance(10.0)
        c.reset()
        assert c.now == 0.0
        c.reset(2.0)
        assert c.now == 2.0


class TestWallClock:
    def test_flows(self):
        import time

        c = WallClock()
        time.sleep(0.02)
        assert c.now >= 0.015

    def test_advance_sleeps(self):
        c = WallClock()
        t0 = c.now
        c.advance(0.03)
        assert c.now - t0 >= 0.025

    def test_negative_advance_rejected(self):
        with pytest.raises(ValidationError):
            WallClock().advance(-0.1)
