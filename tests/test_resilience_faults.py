"""Tests for fault injection, retry policies, and graceful degradation."""

import numpy as np
import pytest

from repro.core.driver import AnalyticTimeModel, run_optimization
from repro.core.registry import PAPER_ALGORITHMS, make_optimizer
from repro.parallel import SerialExecutor, VirtualClock
from repro.problems import get_benchmark
from repro.resilience import (
    FaultSpec,
    FaultyExecutor,
    FaultySimulatedCluster,
    RetryPolicy,
    RunJournal,
    read_events,
)
from repro.util import ConfigurationError, EvaluationError


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(crash_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(crash_rate=0.6, timeout_rate=0.6)
        with pytest.raises(ConfigurationError):
            FaultSpec(timeout=-1.0)

    def test_draw_outcomes_follow_rates(self):
        spec = FaultSpec(crash_rate=0.2, timeout_rate=0.2, nan_rate=0.2)
        rng = np.random.default_rng(0)
        outcomes = [spec.draw(rng) for _ in range(4000)]
        for kind in ("crash", "timeout", "nan"):
            frac = outcomes.count(kind) / len(outcomes)
            assert 0.15 < frac < 0.25
        assert outcomes.count(None) / len(outcomes) > 0.3

    def test_zero_rates_never_fault(self):
        spec = FaultSpec()
        rng = np.random.default_rng(0)
        assert all(spec.draw(rng) is None for _ in range(100))


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(base_delay=1.5, backoff=2.0)
        assert policy.delay(1) == 1.5
        assert policy.delay(2) == 3.0
        assert policy.delay(3) == 6.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(fallback="shrug")


class TestFaultySimulatedCluster:
    def _cluster(self, spec, retry=None, journal=None):
        from repro.parallel import OverheadModel

        return FaultySimulatedCluster(
            4,
            clock=VirtualClock(),
            overhead=OverheadModel(0.0, 0.0),
            spec=spec,
            retry=retry,
            journal=journal,
        )

    def test_no_faults_matches_plain_cluster(self):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        X = np.random.default_rng(0).random((4, 2))
        cluster = self._cluster(FaultSpec())
        y = cluster.evaluate(problem, X)
        assert np.allclose(y, problem(X))
        assert cluster.n_faults == 0
        assert cluster.clock.now == pytest.approx(10.0)

    def test_retries_recover_and_charge_clock(self):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        X = np.random.default_rng(0).random((8, 2))
        spec = FaultSpec(crash_rate=0.4, seed=5)
        cluster = self._cluster(spec, RetryPolicy(max_attempts=5, base_delay=2.0))
        y = cluster.evaluate(problem, X)
        assert np.isfinite(y).all()
        assert cluster.n_faults > 0
        assert cluster.time_wasted > 0.0
        # Clock charged beyond one clean batch round.
        assert cluster.clock.now > 10.0

    def test_timeout_charges_full_limit(self):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        X = np.zeros((1, 2))
        spec = FaultSpec(timeout_rate=1.0, timeout=50.0, seed=0)
        cluster = self._cluster(spec, RetryPolicy(max_attempts=1))
        y = cluster.evaluate(problem, X)
        assert np.isnan(y).all()
        assert cluster.clock.now == pytest.approx(50.0)

    def test_exhausted_points_return_nan(self):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        spec = FaultSpec(crash_rate=1.0, seed=0)
        cluster = self._cluster(spec, RetryPolicy(max_attempts=3))
        y = cluster.evaluate(problem, np.zeros((2, 2)))
        assert np.isnan(y).all()

    def test_raise_fallback(self):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        spec = FaultSpec(crash_rate=1.0, seed=0)
        cluster = self._cluster(
            spec, RetryPolicy(max_attempts=2, fallback="raise")
        )
        with pytest.raises(EvaluationError):
            cluster.evaluate(problem, np.zeros((2, 2)))

    def test_faults_journaled(self, tmp_path):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        journal = RunJournal(tmp_path / "j.jsonl", fsync=False)
        spec = FaultSpec(crash_rate=1.0, seed=0)
        cluster = self._cluster(spec, RetryPolicy(max_attempts=2), journal)
        cluster.evaluate(problem, np.zeros((1, 2)))
        faults = [e for e in read_events(journal.path) if e["event"] == "fault"]
        assert [f["action"] for f in faults] == ["resubmit", "impute"]

    def test_fault_stream_reproducible(self):
        problem = get_benchmark("sphere", dim=2, sim_time=10.0)
        X = np.random.default_rng(1).random((6, 2))
        spec = FaultSpec(crash_rate=0.5, nan_rate=0.2, seed=9)
        y1 = self._cluster(spec).evaluate(problem, X)
        y2 = self._cluster(spec).evaluate(problem, X)
        assert np.array_equal(y1, y2, equal_nan=True)


class TestFaultyExecutor:
    def test_retries_with_real_executor(self):
        problem = get_benchmark("sphere", dim=2, sim_time=0.0)
        sleeps = []
        executor = FaultyExecutor(
            SerialExecutor(),
            FaultSpec(crash_rate=0.5, seed=2),
            RetryPolicy(max_attempts=6, base_delay=0.5),
            sleep=sleeps.append,
        )
        X = np.random.default_rng(0).random((6, 2))
        y = executor.evaluate(problem, X)
        assert np.isfinite(y).all()
        assert np.allclose(y, problem(X))
        assert sleeps and sleeps[0] == 0.5

    def test_context_manager_shuts_down_inner(self):
        class Recording(SerialExecutor):
            closed = False

            def shutdown(self):
                self.closed = True

        inner = Recording()
        with FaultyExecutor(inner, FaultSpec()) as executor:
            executor.evaluate(get_benchmark("sphere", dim=2), np.zeros((1, 2)))
        assert inner.closed


@pytest.mark.parametrize("algo", PAPER_ALGORITHMS)
def test_all_paper_algorithms_survive_faulty_runs(algo):
    """Acceptance: crash rate 0.2 and every algorithm finishes its budget."""
    problem = get_benchmark("sphere", dim=2, sim_time=10.0)
    optimizer = make_optimizer(algo, problem, 2, seed=0)
    result = run_optimization(
        problem,
        optimizer,
        150.0,
        n_initial=8,
        seed=0,
        time_model=AnalyticTimeModel(),
        faults=FaultSpec(crash_rate=0.2, seed=0),
        retry=RetryPolicy(max_attempts=3),
    )
    assert np.isfinite(result.best_value)
    assert result.n_cycles >= 1
