"""Tests for the qEI quadrature oracle and Max-Value Entropy Search."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.acquisition import (
    ExpectedImprovement,
    MaxValueEntropySearch,
    optimize_acqf,
    qExpectedImprovement,
    qei_quadrature,
    qei_quadrature_from_gp,
    sample_min_values,
)
from repro.util import ConfigurationError


@pytest.fixture
def gp(fitted_gp):
    return fitted_gp[0]


@pytest.fixture
def loose_best(fitted_gp):
    return float(np.median(fitted_gp[2]))


BOUNDS3 = np.tile([0.0, 1.0], (3, 1))


class TestQuadratureOracle:
    def test_q1_matches_analytic_ei(self):
        """For q = 1 the oracle must equal the closed-form EI."""
        mu, var, best = 0.3, 0.8, 0.5
        sigma = np.sqrt(var)
        u = (best - mu) / sigma
        analytic = sigma * (u * norm.cdf(u) + norm.pdf(u))
        quad = qei_quadrature([mu], [[var]], best, n_nodes=60)
        assert quad == pytest.approx(analytic, rel=1e-6)

    def test_perfectly_correlated_pair_reduces_to_single(self):
        """Two identical, perfectly correlated points add nothing."""
        cov = np.array([[1.0, 1.0], [1.0, 1.0]])
        single = qei_quadrature([0.0], [[1.0]], 0.5, n_nodes=60)
        double = qei_quadrature([0.0, 0.0], cov, 0.5, n_nodes=60)
        # the singular covariance needs a jitter to factorize, which
        # adds a tiny amount of smoothing — hence the loose tolerance
        assert double == pytest.approx(single, rel=5e-3)

    def test_independent_pair_beats_single(self):
        cov = np.eye(2)
        single = qei_quadrature([0.0], [[1.0]], 0.0, n_nodes=60)
        double = qei_quadrature([0.0, 0.0], cov, 0.0, n_nodes=60)
        assert double > single

    def test_independent_pair_closed_form(self):
        """min of two iid N(0,1) is -|N|-like: E[(0 - min)⁺] has the
        closed form E[max(-min,0)] = E[|min|·1{min<0}]; with T=0 and
        symmetric min distribution the value is E[-min]·P-weighted —
        cross-check against a very large MC estimate."""
        rng = np.random.default_rng(0)
        y = rng.standard_normal((2_000_000, 2))
        mc = float(np.mean(np.maximum(0.0 - y.min(axis=1), 0.0)))
        quad = qei_quadrature([0.0, 0.0], np.eye(2), 0.0, n_nodes=60)
        assert quad == pytest.approx(mc, rel=5e-3)

    def test_mc_qei_converges_to_oracle(self, gp, loose_best, rng):
        """The production MC estimator must agree with the oracle."""
        Xq = rng.random((2, 3))
        oracle = qei_quadrature_from_gp(gp, Xq, loose_best, n_nodes=50)
        mc = qExpectedImprovement(gp, loose_best, q=2, n_mc=16384, seed=0)
        assert mc.value(Xq) == pytest.approx(oracle, rel=0.05, abs=1e-3)

    def test_q3_oracle_vs_mc(self, gp, loose_best, rng):
        Xq = rng.random((3, 3))
        oracle = qei_quadrature_from_gp(gp, Xq, loose_best, n_nodes=24)
        mc = qExpectedImprovement(gp, loose_best, q=3, n_mc=16384, seed=1)
        assert mc.value(Xq) == pytest.approx(oracle, rel=0.08, abs=1e-3)

    def test_large_q_rejected(self):
        with pytest.raises(ConfigurationError):
            qei_quadrature(np.zeros(5), np.eye(5), 0.0)

    def test_bad_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            qei_quadrature([0.0], [[1.0]], 0.0, n_nodes=1)


class TestMinValueSampling:
    def test_samples_below_incumbent_mean(self, gp, fitted_gp, rng):
        y_best = float(fitted_gp[2].min())
        samples = sample_min_values(gp, BOUNDS3, n_samples=32, seed=0)
        assert samples.shape == (32,)
        # plausible minima sit below (or near) the best observation
        assert np.median(samples) < y_best + 0.5

    def test_deterministic_given_seed(self, gp):
        a = sample_min_values(gp, BOUNDS3, n_samples=8, seed=4)
        b = sample_min_values(gp, BOUNDS3, n_samples=8, seed=4)
        np.testing.assert_array_equal(a, b)


class TestMES:
    def test_nonnegative(self, gp, rng):
        mes = MaxValueEntropySearch(gp, BOUNDS3, seed=0)
        vals = mes.value(rng.random((50, 3)))
        assert np.all(vals >= -1e-9)

    def test_prefers_uncertain_over_known(self, gp, fitted_gp, rng):
        """MES vanishes where the model is certain and is positive at
        the most uncertain point of the domain."""
        mes = MaxValueEntropySearch(gp, BOUNDS3, seed=0)
        _, X, _ = fitted_gp
        at_data = float(np.mean(mes.value(X[:5])))
        cand = rng.random((500, 3))
        _, sigma = gp.predict(cand)
        most_uncertain = cand[int(np.argmax(sigma))][None, :]
        assert mes.value(most_uncertain)[0] > at_data
        assert mes.value(most_uncertain)[0] > 0.0

    def test_optimizable(self, gp):
        mes = MaxValueEntropySearch(gp, BOUNDS3, seed=0)
        x, val = optimize_acqf(mes, BOUNDS3, n_restarts=3, raw_samples=64,
                               maxiter=20, seed=0)
        assert np.all(x >= 0) and np.all(x <= 1)
        assert val >= float(np.max(mes.value(np.random.default_rng(0)
                                             .random((64, 3))))) - 1e-9

    def test_config_validation(self, gp):
        with pytest.raises(ConfigurationError):
            MaxValueEntropySearch(gp, BOUNDS3, n_min_samples=0)

    def test_correlates_with_ei_ordering_loosely(self, gp, loose_best, rng):
        """MES and EI are different criteria but both must prefer the
        promising region over a clearly dominated one on average."""
        mes = MaxValueEntropySearch(gp, BOUNDS3, seed=0)
        ei = ExpectedImprovement(gp, loose_best)
        X = rng.random((200, 3))
        top_ei = X[np.argsort(ei.value(X))[-20:]]
        bottom_ei = X[np.argsort(ei.value(X))[:20]]
        assert float(np.mean(mes.value(top_ei))) > float(
            np.mean(mes.value(bottom_ei))
        )
