"""Tests for the driver's parallel-acquisition (BSP) time accounting."""

import numpy as np
import pytest

from repro.core import run_optimization
from repro.core.base import BatchOptimizer, Proposal
from repro.parallel import OverheadModel
from repro.problems import get_benchmark


class _FakeParallelAP(BatchOptimizer):
    """Emits fixed per-region durations to make the makespan checkable."""

    name = "FakeParallelAP"

    def __init__(self, problem, n_batch, durations, **kwargs):
        super().__init__(problem, n_batch, **kwargs)
        self.durations = durations

    def propose(self) -> Proposal:
        X = self.rng.uniform(
            self.problem.lower, self.problem.upper,
            (self.n_batch, self.problem.dim),
        )
        return Proposal(
            X=X,
            fit_time=1.0,
            acq_time=float(np.sum(self.durations)),
            acq_durations=list(self.durations),
        )


class _FakeSerialAP(_FakeParallelAP):
    name = "FakeSerialAP"

    def propose(self) -> Proposal:
        prop = super().propose()
        prop.acq_durations = None
        return prop


def _run(cls, durations, q=2, budget=25.0):
    problem = get_benchmark("sphere", dim=3, sim_time=10.0)
    opt = cls(problem, q, durations, seed=0)
    return run_optimization(
        problem, opt, budget, n_initial=4,
        overhead=OverheadModel(0.0, 0.0), time_scale=1.0, seed=0,
    )


class TestMakespanCharging:
    def test_parallel_ap_charged_as_makespan(self):
        # 4 regions of 3s on 2 workers -> makespan 6s (+1s fit) per cycle
        res = _run(_FakeParallelAP, [3.0, 3.0, 3.0, 3.0])
        assert res.history[0].acq_charged == pytest.approx(7.0)

    def test_serial_ap_charged_as_sum(self):
        res = _run(_FakeSerialAP, [3.0, 3.0, 3.0, 3.0])
        assert res.history[0].acq_charged == pytest.approx(13.0)

    def test_parallel_ap_buys_more_cycles(self):
        """The whole point of BSP-EGO's parallel AP: same measured
        work, fewer virtual seconds, more cycles in the budget."""
        par = _run(_FakeParallelAP, [3.0, 3.0, 3.0, 3.0], budget=100.0)
        ser = _run(_FakeSerialAP, [3.0, 3.0, 3.0, 3.0], budget=100.0)
        assert par.n_cycles > ser.n_cycles

    def test_time_scale_applies_to_durations(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        opt = _FakeParallelAP(problem, 2, [2.0, 2.0], seed=0)
        res = run_optimization(
            problem, opt, 25.0, n_initial=4,
            overhead=OverheadModel(0.0, 0.0), time_scale=10.0, seed=0,
        )
        # fit 1s*10 + makespan of two 20s jobs on 2 workers = 30s
        assert res.history[0].acq_charged == pytest.approx(30.0)
