"""Tests for the BatchOptimizer base machinery."""

import numpy as np
import pytest

from repro.core.base import BatchOptimizer, Proposal
from repro.doe import latin_hypercube
from repro.problems import get_benchmark
from repro.util import ConfigurationError


@pytest.fixture
def problem():
    return get_benchmark("sphere", dim=3)


@pytest.fixture
def opt(problem):
    o = BatchOptimizer(problem, n_batch=2, seed=0)
    X0 = latin_hypercube(8, problem.bounds, seed=0)
    o.initialize(X0, problem(X0))
    return o


class TestDataManagement:
    def test_invalid_batch_size(self, problem):
        with pytest.raises(ConfigurationError):
            BatchOptimizer(problem, n_batch=0)

    def test_best_requires_data(self, problem):
        o = BatchOptimizer(problem, n_batch=1)
        with pytest.raises(ConfigurationError):
            _ = o.best_f

    def test_best_tracks_minimum(self, opt, problem, rng):
        before = opt.best_f
        x_good = np.zeros((1, 3))
        opt.update(x_good, problem(x_good))
        assert opt.best_f <= before
        assert opt.best_f == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(opt.best_x, 0.0, atol=1e-12)

    def test_update_appends(self, opt, rng):
        n = opt.X.shape[0]
        opt.update(rng.random((3, 3)), rng.random(3))
        assert opt.X.shape[0] == n + 3
        assert opt.y.shape[0] == n + 3

    def test_propose_abstract(self, opt):
        with pytest.raises(NotImplementedError):
            opt.propose()

    def test_update_accepts_partial_and_out_of_order_batches(self, opt, rng):
        # Not the last proposal, not a whole batch: any shape-compatible
        # slice is absorbed (the ask/tell service tells point by point).
        n = opt.X.shape[0]
        a = rng.random((2, 3))
        b = rng.random((1, 3))
        opt.update(b, [1.0])  # out of proposal order
        opt.update(a[1:], [2.0])  # half a batch
        opt.update(a[:1], [3.0])
        assert opt.X.shape[0] == n + 3


class TestStrictUpdates:
    def test_off_by_default(self, opt, rng):
        assert opt.strict_updates is False
        opt.update(rng.random((1, 3)), [1.0])  # anything goes

    def test_rejects_unproposed_points(self, opt, rng):
        from repro.util import UnproposedPointError

        opt.strict_updates = True
        with pytest.raises(UnproposedPointError):
            opt.update(rng.random((1, 3)), [1.0])

    def test_accepts_and_consumes_noted_proposals(self, opt, rng):
        from repro.util import UnproposedPointError

        opt.strict_updates = True
        X = rng.random((3, 3))
        opt.note_proposed(X)
        assert opt.outstanding_proposals().shape == (3, 3)
        opt.update(X[1:2], [1.0])  # out of order, single point
        assert opt.outstanding_proposals().shape == (2, 3)
        opt.update(X[[2, 0]], [2.0, 3.0])
        assert opt.outstanding_proposals().shape == (0, 3)
        with pytest.raises(UnproposedPointError):  # ledger row consumed
            opt.update(X[:1], [4.0])

    def test_duplicate_rows_need_duplicate_notes(self, opt):
        from repro.util import UnproposedPointError

        opt.strict_updates = True
        x = np.full((1, 3), 0.5)
        opt.note_proposed(x)
        opt.update(x, [1.0])
        with pytest.raises(UnproposedPointError):
            opt.update(x, [1.0])

    def test_tolerates_json_roundtrip_coordinates(self, opt, rng):
        import json

        opt.strict_updates = True
        X = rng.random((2, 3))
        opt.note_proposed(X)
        X_wire = np.asarray(json.loads(json.dumps(X.tolist())))
        opt.update(X_wire, [1.0, 2.0])
        assert opt.outstanding_proposals().shape == (0, 3)


class TestFitGp:
    def test_fit_returns_timed_gp(self, opt):
        gp, dt = opt._fit_gp()
        assert gp.n_train == opt.X.shape[0]
        assert dt > 0.0
        assert opt.gp is gp


class TestDedupe:
    def test_distinct_point_untouched(self, opt):
        x = np.array([1.0, 2.0, 3.0])
        out = opt._dedupe(x, [np.array([-4.0, -4.0, -4.0])])
        np.testing.assert_array_equal(out, x)

    def test_duplicate_nudged_within_bounds(self, opt, problem):
        x = np.array([1.0, 2.0, 3.0])
        out = opt._dedupe(x, [x.copy()])
        assert not np.allclose(out, x)
        assert np.all(out >= problem.lower) and np.all(out <= problem.upper)

    def test_empty_batch_noop(self, opt):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(opt._dedupe(x, []), x)


class TestProposal:
    def test_defaults(self):
        p = Proposal(X=np.zeros((2, 3)))
        assert p.fit_time == 0.0 and p.acq_time == 0.0
        assert p.acq_durations is None
        assert p.info == {}
