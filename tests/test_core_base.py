"""Tests for the BatchOptimizer base machinery."""

import numpy as np
import pytest

from repro.core.base import BatchOptimizer, Proposal
from repro.doe import latin_hypercube
from repro.problems import get_benchmark
from repro.util import ConfigurationError


@pytest.fixture
def problem():
    return get_benchmark("sphere", dim=3)


@pytest.fixture
def opt(problem):
    o = BatchOptimizer(problem, n_batch=2, seed=0)
    X0 = latin_hypercube(8, problem.bounds, seed=0)
    o.initialize(X0, problem(X0))
    return o


class TestDataManagement:
    def test_invalid_batch_size(self, problem):
        with pytest.raises(ConfigurationError):
            BatchOptimizer(problem, n_batch=0)

    def test_best_requires_data(self, problem):
        o = BatchOptimizer(problem, n_batch=1)
        with pytest.raises(ConfigurationError):
            _ = o.best_f

    def test_best_tracks_minimum(self, opt, problem, rng):
        before = opt.best_f
        x_good = np.zeros((1, 3))
        opt.update(x_good, problem(x_good))
        assert opt.best_f <= before
        assert opt.best_f == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(opt.best_x, 0.0, atol=1e-12)

    def test_update_appends(self, opt, rng):
        n = opt.X.shape[0]
        opt.update(rng.random((3, 3)), rng.random(3))
        assert opt.X.shape[0] == n + 3
        assert opt.y.shape[0] == n + 3

    def test_propose_abstract(self, opt):
        with pytest.raises(NotImplementedError):
            opt.propose()


class TestFitGp:
    def test_fit_returns_timed_gp(self, opt):
        gp, dt = opt._fit_gp()
        assert gp.n_train == opt.X.shape[0]
        assert dt > 0.0
        assert opt.gp is gp


class TestDedupe:
    def test_distinct_point_untouched(self, opt):
        x = np.array([1.0, 2.0, 3.0])
        out = opt._dedupe(x, [np.array([-4.0, -4.0, -4.0])])
        np.testing.assert_array_equal(out, x)

    def test_duplicate_nudged_within_bounds(self, opt, problem):
        x = np.array([1.0, 2.0, 3.0])
        out = opt._dedupe(x, [x.copy()])
        assert not np.allclose(out, x)
        assert np.all(out >= problem.lower) and np.all(out <= problem.upper)

    def test_empty_batch_noop(self, opt):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(opt._dedupe(x, []), x)


class TestProposal:
    def test_defaults(self):
        p = Proposal(X=np.zeros((2, 3)))
        assert p.fit_time == 0.0 and p.acq_time == 0.0
        assert p.acq_durations is None
        assert p.info == {}
