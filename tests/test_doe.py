"""Tests for the initial designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import latin_hypercube, make_sampler, sobol, uniform_random
from repro.util import ConfigurationError

BOUNDS = np.array([[-2.0, 3.0], [0.0, 10.0], [5.0, 6.0]])


@pytest.mark.parametrize("sampler", [latin_hypercube, sobol, uniform_random])
class TestCommon:
    def test_shape(self, sampler):
        X = sampler(17, BOUNDS, seed=0)
        assert X.shape == (17, 3)

    def test_within_bounds(self, sampler):
        X = sampler(64, BOUNDS, seed=1)
        assert np.all(X >= BOUNDS[:, 0]) and np.all(X <= BOUNDS[:, 1])

    def test_seed_reproducible(self, sampler):
        np.testing.assert_array_equal(
            sampler(8, BOUNDS, seed=42), sampler(8, BOUNDS, seed=42)
        )

    def test_seeds_differ(self, sampler):
        assert not np.allclose(sampler(8, BOUNDS, seed=1), sampler(8, BOUNDS, seed=2))

    def test_invalid_n(self, sampler):
        with pytest.raises(ConfigurationError):
            sampler(0, BOUNDS)


class TestLatinHypercube:
    def test_stratification(self):
        """Each margin has exactly one point per 1/n slice."""
        n = 25
        X = latin_hypercube(n, np.tile([0.0, 1.0], (4, 1)), seed=3)
        for j in range(4):
            cells = np.floor(X[:, j] * n).astype(int)
            assert sorted(cells.tolist()) == list(range(n))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 40), seed=st.integers(0, 1000))
    def test_stratification_property(self, n, seed):
        X = latin_hypercube(n, np.tile([0.0, 1.0], (2, 1)), seed=seed)
        for j in range(2):
            cells = np.floor(np.clip(X[:, j], 0, 1 - 1e-12) * n).astype(int)
            assert len(set(cells.tolist())) == n


class TestSobol:
    def test_non_power_of_two_ok(self):
        X = sobol(10, BOUNDS, seed=0)
        assert X.shape == (10, 3)

    def test_unscrambled_deterministic(self):
        a = sobol(8, BOUNDS, seed=0, scramble=False)
        b = sobol(8, BOUNDS, seed=99, scramble=False)
        np.testing.assert_array_equal(a, b)


class TestMakeSampler:
    @pytest.mark.parametrize(
        "name,func",
        [("lhs", latin_hypercube), ("sobol", sobol), ("uniform", uniform_random),
         ("random", uniform_random), ("latin_hypercube", latin_hypercube)],
    )
    def test_lookup(self, name, func):
        assert make_sampler(name) is func

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_sampler("halton")
