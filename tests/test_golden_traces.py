"""Golden-trace suite: observability is provably bit-neutral.

Each of the five paper algorithms runs a seeded 3-cycle optimization
on a fast benchmark four times: twice untraced, once with the full
observability stack (tracer + metrics) enabled, and once untraced
again after the traced run. The suite pins:

- **determinism** — the same seed yields byte-identical canonical
  journals and evaluation histories across repetitions;
- **neutrality** — enabling tracing/metrics changes neither (the
  instrumentation touches no RNG stream and writes nothing into the
  journal), so checkpoints/resume behave identically with ``--trace``
  on or off;
- **shape** — the traced run actually produced the span taxonomy the
  docs promise, with every cycle correlated.

Measured wall seconds (``fit_time`` / ``acq_time``) are inherently
machine-dependent, so journals are canonicalized by dropping exactly
those fields before hashing; everything else — including the full
optimizer state snapshots with their RNG streams — must match.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.core import AnalyticTimeModel, make_optimizer, run_optimization
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    cycle_breakdown,
    set_metrics,
    set_tracer,
)
from repro.problems import get_benchmark
from repro.resilience import RunJournal, read_events

ALGORITHMS = ("kb_qego", "mic_qego", "mc_qego", "bsp_ego", "turbo")
SEED = 1234
N_CYCLES = 3

#: Measured wall-clock fields: the only journal content allowed to
#: differ between two runs of the same seed.
VOLATILE_FIELDS = frozenset({"fit_time", "acq_time"})

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 32},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


@pytest.fixture(autouse=True)
def _reset_obs():
    """Never leak a tracer/metrics registry into other tests."""
    yield
    set_tracer(NULL_TRACER)
    set_metrics(NULL_METRICS)


def run_golden(algorithm: str, journal_path, *, traced: bool,
               gp_overrides: dict | None = None):
    """One seeded 3-cycle run; returns (result, journal events, tracer)."""
    tracer = None
    if traced:
        tracer = Tracer()
        set_tracer(tracer)
        set_metrics(MetricsRegistry())
    else:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    try:
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        options = dict(FAST)
        if gp_overrides:
            options = {
                **FAST, "gp_options": {**FAST["gp_options"], **gp_overrides}
            }
        optimizer = make_optimizer(algorithm, problem, 2, seed=SEED, **options)
        result = run_optimization(
            problem,
            optimizer,
            budget=1e9,
            n_initial=6,
            seed=SEED,
            max_cycles=N_CYCLES,
            time_model=AnalyticTimeModel(),
            journal=RunJournal(journal_path, fsync=False),
        )
    finally:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    return result, read_events(journal_path), tracer


def canonical_journal(events: list[dict]) -> list[dict]:
    """Journal events minus the measured-wall-second fields."""
    return [
        {k: v for k, v in ev.items() if k not in VOLATILE_FIELDS}
        for ev in events
    ]


def journal_hash(events: list[dict]) -> str:
    payload = json.dumps(canonical_journal(events), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def history_hash(result) -> str:
    """Hash of the run's evaluation history (values + trajectory)."""
    payload = json.dumps(
        {
            "best_x": [float(v) for v in np.asarray(result.best_x).ravel()],
            "best_value": float(result.best_value),
            "initial_best": float(result.initial_best),
            "n_cycles": result.n_cycles,
            "n_simulations": result.n_simulations,
            "trajectory": [float(v) for v in result.trajectory],
            "evals": [int(r.n_evaluations) for r in result.history],
            "batch_sizes": [int(r.batch_size) for r in result.history],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestGoldenTraces:
    def test_rerun_determinism(self, algorithm, tmp_path):
        """Same seed twice (untraced) -> identical canonical journals."""
        res_a, ev_a, _ = run_golden(
            algorithm, tmp_path / "a.jsonl", traced=False
        )
        res_b, ev_b, _ = run_golden(
            algorithm, tmp_path / "b.jsonl", traced=False
        )
        assert res_a.n_cycles == N_CYCLES
        assert history_hash(res_a) == history_hash(res_b)
        assert journal_hash(ev_a) == journal_hash(ev_b)

    def test_tracing_is_bit_neutral(self, algorithm, tmp_path):
        """Tracing + metrics on -> journal and history bit-identical."""
        res_off, ev_off, _ = run_golden(
            algorithm, tmp_path / "off.jsonl", traced=False
        )
        res_on, ev_on, tracer = run_golden(
            algorithm, tmp_path / "on.jsonl", traced=True
        )
        assert history_hash(res_off) == history_hash(res_on)
        assert journal_hash(ev_off) == journal_hash(ev_on)
        # Not just hash-equal: the canonical event streams match 1:1.
        assert canonical_journal(ev_off) == canonical_journal(ev_on)
        assert np.array_equal(res_off.best_x, res_on.best_x)
        # The traced run really traced: every cycle produced spans.
        names = {s.name for s in tracer.spans}
        assert {"cycle", "propose", "evaluate", "fit", "checkpoint"} <= names
        rows = cycle_breakdown(tracer.spans)
        assert [row["cycle"] for row in rows] == list(range(1, N_CYCLES + 1))

    def test_factor_cache_is_bit_neutral(self, algorithm, tmp_path):
        """The factor cache (on by default) must not move a single bit
        of the journal or the evaluation history relative to a run with
        the cache disabled: a cold miss executes the exact factorization
        sequence the cache-free path does, and the default
        fit-every-cycle configuration never takes an append/truncate
        shortcut mid-run."""
        res_on, ev_on, _ = run_golden(
            algorithm, tmp_path / "cache_on.jsonl", traced=False
        )
        res_off, ev_off, _ = run_golden(
            algorithm,
            tmp_path / "cache_off.jsonl",
            traced=False,
            gp_overrides={"factor_cache": False},
        )
        assert history_hash(res_on) == history_hash(res_off)
        assert journal_hash(ev_on) == journal_hash(ev_off)
        assert canonical_journal(ev_on) == canonical_journal(ev_off)
        assert np.array_equal(res_on.best_x, res_off.best_x)

    def test_trace_does_not_touch_journal(self, algorithm, tmp_path):
        """The journal schema never grows observability fields."""
        _, events, _ = run_golden(
            algorithm, tmp_path / "t.jsonl", traced=True
        )
        for ev in events:
            assert "span" not in ev
            assert "trace" not in ev
        kinds = [ev["event"] for ev in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_completed"
        assert kinds.count("cycle") == N_CYCLES
