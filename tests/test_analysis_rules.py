"""Fixture-driven tests for every ``repro lint`` rule.

Each rule gets at least one true positive and one true negative, plus
suppression and allowlist cases where the rule defines them. Fixtures
are written to tmp_path and analyzed through the real engine, so the
whole pipeline (parse → rules → suppressions) is exercised.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_file, analyze_paths

pytestmark = pytest.mark.filterwarnings("ignore")


def lint_source(tmp_path, source, name="fixture.py", subdir=None):
    """Write one fixture file and return (findings, suppressed)."""
    directory = tmp_path if subdir is None else tmp_path / subdir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(textwrap.dedent(source))
    return analyze_file(path, roots=(tmp_path,))


def rule_ids(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# RNG-001
# ----------------------------------------------------------------------
class TestRng001:
    def test_numpy_module_draw_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import numpy as np

            def propose():
                return np.random.uniform(0, 1, 4)
        """)
        assert rule_ids(findings) == ["RNG-001"]
        assert findings[0].line == 5
        assert "numpy.random.uniform" in findings[0].message

    def test_from_import_draw_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            from numpy.random import normal
            from random import choice

            def propose(xs):
                return choice(xs) + normal()
        """)
        assert sorted(rule_ids(findings)) == ["RNG-001", "RNG-001"]

    def test_seeding_the_global_stream_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import numpy as np
            np.random.seed(0)
        """)
        assert rule_ids(findings) == ["RNG-001"]

    def test_injected_generator_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import numpy as np
            import random

            def propose(rng: np.random.Generator):
                local = np.random.default_rng(0)
                backoff = random.Random(7)
                return rng.uniform(0, 1), local.normal(), backoff.random()
        """)
        assert findings == []

    def test_suppressed_inline(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            import numpy as np

            def legacy():
                return np.random.rand()  # repro-lint: disable=RNG-001
        """)
        assert findings == []
        assert rule_ids(suppressed) == ["RNG-001"]


# ----------------------------------------------------------------------
# RNG-002
# ----------------------------------------------------------------------
class TestRng002:
    def test_for_over_set_call_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def dispatch(workers):
                for w in set(workers):
                    w.go()
        """)
        assert rule_ids(findings) == ["RNG-002"]

    def test_comprehension_over_set_literal_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def order():
                return [x for x in {3, 1, 2}]
        """)
        assert rule_ids(findings) == ["RNG-002"]

    def test_list_of_set_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def names(seen):
                return list(frozenset(seen))
        """)
        assert rule_ids(findings) == ["RNG-002"]

    def test_sorted_set_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def dispatch(workers):
                for w in sorted(set(workers)):
                    w.go()
                return sorted({3, 1, 2})
        """)
        assert findings == []

    def test_dict_iteration_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def walk(d: dict):
                for k in d:
                    yield d[k]
                for k, v in d.items():
                    yield v
        """)
        assert findings == []

    def test_membership_test_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def member(x, xs):
                return x in set(xs)
        """)
        assert findings == []


# ----------------------------------------------------------------------
# CLK-001
# ----------------------------------------------------------------------
class TestClk001:
    def test_time_time_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import time

            def stamp():
                return time.time()
        """)
        assert rule_ids(findings) == ["CLK-001"]

    def test_datetime_now_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)
        assert rule_ids(findings) == ["CLK-001"]

    def test_injected_clock_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def stamp(clock):
                return clock()

            def sleepy(time):
                time.sleep(1.0)  # not a clock *read*
        """)
        assert findings == []

    def test_obs_service_util_allowlisted(self, tmp_path):
        source = """
            import time

            def stamp():
                return time.time()
        """
        for subdir in ("obs", "service", "util"):
            findings, _ = lint_source(
                tmp_path, source, name="mod.py", subdir=subdir
            )
            assert findings == [], subdir
        findings, _ = lint_source(
            tmp_path, source, name="mod.py", subdir="core"
        )
        assert rule_ids(findings) == ["CLK-001"]

    def test_time_reference_without_call_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import time

            def build(clock=time.time):
                return clock
        """)
        assert findings == []


# ----------------------------------------------------------------------
# ATM-001
# ----------------------------------------------------------------------
class TestAtm001:
    def test_open_w_json_dump_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import json

            def checkpoint(state, path):
                with open(path, "w") as fh:
                    json.dump(state, fh)
        """)
        assert rule_ids(findings) == ["ATM-001"]
        assert findings[0].line == 5

    def test_pickle_and_mode_kwarg_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import pickle

            def checkpoint(state, path):
                with open(path, mode="wb") as fh:
                    pickle.dump(state, fh)
        """)
        assert rule_ids(findings) == ["ATM-001"]

    def test_direct_dump_into_open_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import json

            def checkpoint(state, path):
                json.dump(state, open(path, "w"))
        """)
        assert rule_ids(findings) == ["ATM-001"]

    def test_read_mode_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import json

            def load(path):
                with open(path) as fh:
                    return json.load(fh)
        """)
        assert findings == []

    def test_plain_text_write_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def note(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """)
        assert findings == []

    def test_resilience_package_allowlisted(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import json

            def atomic_write_json(path, obj):
                with open(path, "w") as fh:
                    json.dump(obj, fh)
        """, name="atomic.py", subdir="resilience")
        assert findings == []


# ----------------------------------------------------------------------
# LOCK-001
# ----------------------------------------------------------------------
_GUARDED_CLASS = """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {{}}  # guarded-by: self._lock
            self.count = 0  # guarded-by: self._lock

        {body}
"""


class TestLock001:
    def test_unguarded_mutation_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, _GUARDED_CLASS.format(body="""
        def put(self, k, v):
            self._items[k] = v
"""))
        assert rule_ids(findings) == ["LOCK-001"]
        assert "self._items" in findings[0].message

    def test_augassign_and_mutator_call_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, _GUARDED_CLASS.format(body="""
        def bump(self):
            self.count += 1

        def wipe(self):
            self._items.clear()
"""))
        assert sorted(rule_ids(findings)) == ["LOCK-001", "LOCK-001"]

    def test_with_lock_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, _GUARDED_CLASS.format(body="""
        def put(self, k, v):
            with self._lock:
                self._items[k] = v
                self.count += 1
"""))
        assert findings == []

    def test_locked_suffix_method_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, _GUARDED_CLASS.format(body="""
        def _evict_locked(self, k):
            del self._items[k]
"""))
        assert findings == []

    def test_init_assignment_exempt(self, tmp_path):
        # The declarations themselves (in __init__) must not self-flag.
        findings, _ = lint_source(tmp_path, _GUARDED_CLASS.format(body="""
        def read(self, k):
            return self._items.get(k)
"""))
        assert findings == []

    def test_wrong_lock_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self._items = {}  # guarded-by: self._lock

                def put(self, k, v):
                    with self._other:
                        self._items[k] = v
        """)
        assert rule_ids(findings) == ["LOCK-001"]

    def test_unannotated_class_ignored(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            class Plain:
                def __init__(self):
                    self._items = {}

                def put(self, k, v):
                    self._items[k] = v
        """)
        assert findings == []


# ----------------------------------------------------------------------
# EXC-001
# ----------------------------------------------------------------------
class TestExc001:
    def test_bare_except_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def risky():
                try:
                    return 1 / 0
                except:
                    return None
        """)
        assert rule_ids(findings) == ["EXC-001"]
        assert "bare" in findings[0].message

    def test_silent_swallow_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def risky():
                try:
                    return 1 / 0
                except Exception:
                    pass
        """)
        assert rule_ids(findings) == ["EXC-001"]

    def test_silent_continue_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def risky(xs):
                for x in xs:
                    try:
                        x.poke()
                    except BaseException:
                        continue
        """)
        assert rule_ids(findings) == ["EXC-001"]

    def test_fallback_work_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def risky(metrics):
                try:
                    return 1 / 0
                except Exception:
                    metrics.counter("risky.failed").inc()
                    return None
        """)
        assert findings == []

    def test_typed_exception_pass_ok(self, tmp_path):
        # Swallowing a *typed* error is a deliberate, narrow decision.
        findings, _ = lint_source(tmp_path, """
            def risky(path):
                try:
                    path.unlink()
                except OSError:
                    pass
        """)
        assert findings == []

    def test_reraise_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def risky():
                try:
                    return 1 / 0
                except Exception as exc:
                    raise RuntimeError("typed") from exc
        """)
        assert findings == []


# ----------------------------------------------------------------------
# DET-001
# ----------------------------------------------------------------------
class TestDet001:
    def test_uuid4_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import uuid

            def ticket_id():
                return str(uuid.uuid4())
        """)
        assert rule_ids(findings) == ["DET-001"]

    def test_urandom_and_secrets_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import os
            import secrets

            def token():
                return os.urandom(8) + secrets.token_bytes(8)
        """)
        assert sorted(rule_ids(findings)) == ["DET-001", "DET-001"]

    def test_from_import_uuid4_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            from uuid import uuid4

            def ticket_id():
                return uuid4().hex
        """)
        assert rule_ids(findings) == ["DET-001"]

    def test_deterministic_ids_ok(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import uuid

            def ticket_id(counter: int):
                return f"ticket-{counter:08d}"

            def stable(ns, name):
                return uuid.uuid5(ns, name)  # content-derived, stable
        """)
        assert findings == []


# ----------------------------------------------------------------------
# Engine-level behaviors shared by all rules
# ----------------------------------------------------------------------
class TestEngineBehaviors:
    def test_syntax_error_reports_parse_finding(self, tmp_path):
        findings, _ = lint_source(tmp_path, "def broken(:\n    pass\n")
        assert rule_ids(findings) == ["PARSE-001"]

    def test_disable_all_suppresses_everything(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=all
        """)
        assert findings == []
        assert rule_ids(suppressed) == ["CLK-001"]

    def test_suppression_on_line_above(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            import time

            def stamp():
                # repro-lint: disable=CLK-001
                return time.time()
        """)
        assert findings == []
        assert rule_ids(suppressed) == ["CLK-001"]

    def test_suppression_for_other_rule_does_not_apply(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RNG-001
        """)
        assert rule_ids(findings) == ["CLK-001"]
        assert suppressed == []

    def test_analyze_paths_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text("import time\nt = time.time()\n")
        first = analyze_paths([tmp_path])
        second = analyze_paths([tmp_path])
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]
        assert [f.path for f in first.findings] == sorted(
            f.path for f in first.findings
        )
