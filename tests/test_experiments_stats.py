"""Tests for the statistics helpers."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.experiments import pairwise_ttests, summarize
from repro.util import ConfigurationError


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.mean == 2.5
        assert s.sd == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_value_sd_zero(self):
        assert summarize([5.0]).sd == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestPairwiseTTests:
    def test_matches_scipy(self, rng):
        a = rng.normal(0, 1, 10).tolist()
        b = rng.normal(1, 1, 10).tolist()
        labels, p = pairwise_ttests({"a": a, "b": b})
        expected = sps.ttest_ind(a, b, equal_var=True).pvalue
        assert p[0, 1] == pytest.approx(expected)

    def test_symmetry_and_diagonal(self, rng):
        groups = {k: rng.normal(k_i, 1, 8).tolist()
                  for k_i, k in enumerate("abc")}
        labels, p = pairwise_ttests(groups)
        np.testing.assert_allclose(p, p.T)
        np.testing.assert_array_equal(np.diag(p), 1.0)

    def test_identical_groups_high_p(self, rng):
        x = rng.normal(0, 1, 12).tolist()
        _, p = pairwise_ttests({"a": x, "b": list(x)})
        assert p[0, 1] == pytest.approx(1.0)

    def test_separated_groups_low_p(self, rng):
        a = rng.normal(0, 0.1, 10).tolist()
        b = rng.normal(10, 0.1, 10).tolist()
        _, p = pairwise_ttests({"a": a, "b": b})
        assert p[0, 1] < 1e-6

    def test_welch_option(self, rng):
        a = rng.normal(0, 0.1, 10).tolist()
        b = rng.normal(0.5, 5.0, 10).tolist()
        _, p_student = pairwise_ttests({"a": a, "b": b}, equal_var=True)
        _, p_welch = pairwise_ttests({"a": a, "b": b}, equal_var=False)
        assert p_student[0, 1] != p_welch[0, 1]

    def test_degenerate_constant_groups(self):
        _, p = pairwise_ttests({"a": [1.0, 1.0], "b": [1.0, 1.0]})
        assert p[0, 1] == 1.0
        _, p = pairwise_ttests({"a": [1.0, 1.0], "b": [2.0, 2.0]})
        assert p[0, 1] == 0.0

    def test_single_group_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_ttests({"a": [1.0, 2.0]})

    def test_tiny_group_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_ttests({"a": [1.0], "b": [1.0, 2.0]})
