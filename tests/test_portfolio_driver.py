"""Tests for the completion-driven portfolio driver."""

import numpy as np
import pytest

from repro.portfolio import run_portfolio_optimization
from repro.portfolio.arms import FailingArm
from repro.problems import CountingProblem, get_benchmark
from repro.resilience import RunJournal
from repro.util import ConfigurationError

FAST = {
    "gp_options": {"n_restarts": 0, "maxiter": 20},
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15},
}


def _run(budget=60.0, n_workers=3, arms=("kb", "random"), **kwargs):
    problem = kwargs.pop("problem", None) or get_benchmark(
        "sphere", dim=3, sim_time=10.0
    )
    return run_portfolio_optimization(
        problem, n_workers, budget, arms=arms, n_initial=8, seed=0,
        time_scale=0.0, **FAST, **kwargs,
    )


class TestSteadyState:
    def test_result_basics(self):
        res = _run()
        assert res.n_workers == 3
        assert res.n_initial == 8
        assert res.n_simulations > 0
        assert res.best_value <= res.initial_best
        assert set(res.arm_stats) == {"kb", "random"}
        assert len(res.trajectory) == len(res.history)

    def test_every_dispatch_attributed_to_an_arm(self):
        res = _run()
        names = {rec.arm for rec in res.history}
        assert names <= {"kb", "random"}
        total = sum(s["selections"] for s in res.arm_stats.values())
        assert total == len(res.history)

    def test_busy_idle_accounting(self):
        res = _run(budget=100.0)
        assert res.busy_virtual_s > 0
        assert res.idle_virtual_s >= 0
        assert res.busy_share + res.idle_share == pytest.approx(1.0)
        # worker-seconds must add up to n_workers * elapsed (the tail
        # of the last simulations may run past `elapsed`, so busy can
        # exceed the product by at most one sim per worker)
        assert res.busy_virtual_s <= res.n_workers * (res.elapsed + 11.0)

    def test_no_lost_evaluations(self):
        problem = CountingProblem(
            get_benchmark("sphere", dim=3, sim_time=10.0)
        )
        res = _run(budget=40.0, n_workers=2, problem=problem)
        assert problem.n_evals == res.n_initial + res.n_simulations

    def test_improves_over_initial(self):
        res = _run(budget=120.0, arms=("kb", "turbo", "random"))
        assert res.best_value < res.initial_best

    def test_deterministic_given_seed(self):
        a = _run(budget=50.0)
        b = _run(budget=50.0)
        assert np.array_equal(a.best_x, b.best_x)
        assert [r.arm for r in a.history] == [r.arm for r in b.history]
        assert np.array_equal(a.trajectory, b.trajectory)

    def test_fantasy_modes_run(self):
        for mode, kw in (("constant_liar", {}),
                         ("randomized_kb", {"rkb_scale": 0.5})):
            res = _run(budget=40.0, fantasy=mode, **kw)
            assert res.n_simulations > 0
            assert res.fantasy == mode

    def test_to_dict_is_json_ready(self):
        import json

        blob = json.dumps(_run(budget=40.0).to_dict())
        assert "arm_stats" in json.loads(blob)


class TestCompletionOrderPermutation:
    """The async contract: *any* completion interleaving yields a valid,
    internally consistent run — same evaluation conservation, same
    journal shape — only the schedule differs."""

    @pytest.mark.parametrize("pattern", ["fifo", "lifo", "shuffle"])
    def test_permuted_completion_orders_stay_consistent(
        self, pattern, tmp_path
    ):
        # sim_time_fn reorders completions: constant -> FIFO; strongly
        # decreasing -> later dispatches finish first (LIFO-ish);
        # rng-driven -> arbitrary interleaving.
        def sim_time_fn(index, worker, rng):
            if pattern == "fifo":
                return 10.0
            if pattern == "lifo":
                return max(1.0, 30.0 - 2.0 * (index % 14))
            return float(rng.uniform(1.0, 30.0))

        problem = CountingProblem(
            get_benchmark("sphere", dim=3, sim_time=10.0)
        )
        journal = RunJournal(tmp_path / f"{pattern}.jsonl", fsync=False)
        res = run_portfolio_optimization(
            problem, 3, 60.0, arms=("kb", "random"), n_initial=8,
            seed=0, time_scale=0.0, sim_time_fn=sim_time_fn,
            journal=journal, **FAST,
        )
        events = journal.events()
        dispatches = [e for e in events if e["event"] == "dispatch"]
        completions = [e for e in events if e["event"] == "completion"]
        # conservation: every dispatch completes, exactly once
        assert len(dispatches) == len(completions) == res.n_simulations
        assert len({d["index"] for d in dispatches}) == len(dispatches)
        assert problem.n_evals == res.n_initial + res.n_simulations
        # the incumbent is the min over everything that completed
        y_all = [y for c in completions for y in c["y_used"]]
        assert res.best_value == pytest.approx(
            min(min(y_all), res.initial_best)
        )
        # completions are journaled in nondecreasing virtual time
        times = [c["t"] for c in completions]
        assert times == sorted(times)

    def test_orders_actually_differ(self):
        """Sanity: the LIFO pattern really does invert completion order
        relative to FIFO (the permutation above is not vacuous)."""
        orders = {}
        for pattern, fn in (
            ("fifo", lambda i, w, r: 10.0),
            ("lifo", lambda i, w, r: max(1.0, 30.0 - 2.0 * (i % 14))),
        ):
            res = _run(budget=60.0, sim_time_fn=fn)
            orders[pattern] = [rec.index for rec in res.history]
        assert orders["fifo"] != orders["lifo"]


class TestFailingArmQuarantine:
    def test_failing_arm_quarantined_run_converges(self, tmp_path):
        problem = CountingProblem(
            get_benchmark("sphere", dim=3, sim_time=10.0)
        )
        journal = RunJournal(tmp_path / "chaos.jsonl", fsync=False)
        failing = FailingArm(problem)
        res = run_portfolio_optimization(
            problem, 3, 80.0,
            arms=("kb", "random", failing),
            allocator_options={"max_sick": 2, "quarantine": 6},
            n_initial=8, seed=0, time_scale=0.0, journal=journal, **FAST,
        )
        stats = res.arm_stats["failing"]
        assert stats["failures"] > 0
        assert stats["quarantines"] >= 1
        # zero lost evaluations: the degraded slots still evaluated
        assert problem.n_evals == res.n_initial + res.n_simulations
        assert res.best_value < res.initial_best
        events = journal.events()
        assert any(e["event"] == "arm_quarantined" for e in events)
        assert any(
            e["event"] == "degradation"
            and str(e.get("kind", "")).startswith("arm_failed:failing")
            for e in events
        )

    def test_allocator_checkpoints_in_journal(self, tmp_path):
        """portfolio_state events carry allocator counters + RNG; the
        final snapshot must reconstruct the run's end-state bit-exactly
        (the kill/resume contract for the allocator)."""
        from repro.portfolio.allocator import BanditAllocator

        journal = RunJournal(tmp_path / "ckpt.jsonl", fsync=False)
        res = _run(budget=50.0, journal=journal, checkpoint_every=1)
        snaps = [
            e for e in journal.events() if e["event"] == "portfolio_state"
        ]
        assert len(snaps) == res.n_simulations
        final = snaps[-1]
        assert "rng" in final
        resumed = BanditAllocator(["kb", "random"])
        resumed.set_state(final["allocator"])
        assert resumed.stats() == res.arm_stats


class TestConfiguration:
    def test_invalid_workers(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_portfolio_optimization(problem, 0, 10.0)

    def test_invalid_budget(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_portfolio_optimization(problem, 2, 0.0)

    def test_unknown_arm(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_portfolio_optimization(problem, 2, 10.0, arms=("nope",))

    def test_unknown_fantasy(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_portfolio_optimization(problem, 2, 10.0, fantasy="liar")
