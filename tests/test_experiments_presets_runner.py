"""Tests for presets and the single-run runner."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER,
    QUICK,
    QUICK_REFIT4,
    SMOKE,
    SMOKE_REFIT4,
    Preset,
    get_preset,
    run_single,
)
from repro.experiments.runner import initial_design_for, make_problem
from repro.util import ConfigurationError

TINY = Preset(
    name="tiny-runner",
    budget=30.0,
    sim_time=10.0,
    n_seeds=1,
    batch_sizes=(2,),
    time_scale=0.0,
    initial_per_batch=4,
    algorithms=("Random",),
    dim=3,
)


class TestPresets:
    def test_paper_matches_table_2(self):
        assert PAPER.budget == 1200.0
        assert PAPER.sim_time == 10.0
        assert PAPER.initial_per_batch == 16
        assert PAPER.batch_sizes == (1, 2, 4, 8, 16)
        assert PAPER.n_seeds == 10
        assert PAPER.time_scale == 1.0
        assert PAPER.max_cycles_per_run == 120  # the paper's maximum

    def test_paper_algorithm_roster(self):
        assert set(PAPER.algorithms) == {
            "KB-q-EGO", "mic-q-EGO", "MC-based q-EGO", "BSP-EGO", "TuRBO"
        }

    def test_lookup(self):
        assert get_preset("paper") is PAPER
        assert get_preset("QUICK") is QUICK
        assert get_preset("smoke") is SMOKE

    def test_refit_variants_surface_gp_options(self):
        assert QUICK_REFIT4.gp_options == {"refit_every": 4}
        assert SMOKE_REFIT4.gp_options == {"refit_every": 4}
        # Same protocol otherwise: only the refit cadence differs.
        for refit, base in ((QUICK_REFIT4, QUICK), (SMOKE_REFIT4, SMOKE)):
            assert refit.budget == base.budget
            assert refit.batch_sizes == base.batch_sizes
            assert refit.n_seeds == base.n_seeds
            assert refit.time_scale == base.time_scale
        assert get_preset("quick-refit4") is QUICK_REFIT4
        assert get_preset("smoke-refit4") is SMOKE_REFIT4

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_preset("gigantic")

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            Preset(name="x", budget=0.0, sim_time=10.0, n_seeds=1,
                   batch_sizes=(1,), time_scale=1.0)


class TestMakeProblem:
    def test_benchmark(self):
        p = make_problem("ackley", TINY)
        assert p.dim == 3
        assert p.sim_time == TINY.sim_time

    def test_uphes(self):
        p = make_problem("uphes", TINY)
        assert p.name == "uphes"
        assert p.maximize
        assert p.sim_time == TINY.sim_time

    def test_uphes_scenarios_shared(self, rng):
        """Every run must see the same plant (fixed scenario seed)."""
        a = make_problem("uphes", TINY)
        b = make_problem("uphes", TINY)
        x = np.zeros((1, 12))
        x[0, 0] = -7.0
        assert a(x)[0] == b(x)[0]


class TestInitialDesign:
    def test_size_scales_with_batch(self):
        p = make_problem("sphere", TINY)
        X = initial_design_for(p, 4, seed=0, preset=TINY)
        assert X.shape == (16, 3)

    def test_same_seed_same_design(self):
        p = make_problem("sphere", TINY)
        a = initial_design_for(p, 2, seed=3, preset=TINY)
        b = initial_design_for(p, 2, seed=3, preset=TINY)
        np.testing.assert_array_equal(a, b)

    def test_algorithm_independent(self):
        """The design depends only on (seed, n_batch) — the paper uses
        shared initial sets across algorithms."""
        p = make_problem("sphere", TINY)
        a = initial_design_for(p, 2, seed=0, preset=TINY)
        b = initial_design_for(p, 2, seed=0, preset=TINY)
        np.testing.assert_array_equal(a, b)


class TestRunSingle:
    def test_produces_record(self):
        rec = run_single("sphere", "Random", 2, seed=0, preset=TINY)
        assert rec.problem == "sphere"
        assert rec.preset == "tiny-runner"
        assert rec.n_initial == 8
        assert rec.n_cycles >= 1

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            run_single("sphere", "Random", 0, seed=0, preset=TINY)
